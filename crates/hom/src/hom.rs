//! Backtracking homomorphism search.
//!
//! Execution follows a compiled [`JoinPlan`](crate::plan::JoinPlan): each
//! step carries the set of argument positions statically known to be bound,
//! and the executor picks a join algorithm per step — a fully-bound
//! containment probe, a multi-position hash join against a cached
//! [`JoinTable`](crate::index), an indexed nested loop over the shortest
//! postings list, or a (chunked, columnar) relation scan. Unification is
//! always re-verified element-wise against the binding, so the algorithm
//! choice affects speed, never the visited set.

use crate::index::{InstanceIndex, Tuples};
use crate::plan::{
    plan_join_cached, record_join_counters, record_trivial_plan, step_for, PlanStep,
};
use std::collections::BTreeMap;
use std::ops::ControlFlow;
use tgdkit_instance::{store, Elem, Fact, Instance};
use tgdkit_logic::{Atom, Var};

/// A partial assignment of variables to elements (`None` = unassigned).
pub type Binding = Vec<Option<Elem>>;

/// Finds one homomorphism from the conjunction `atoms` (over variables
/// `Var(0..num_vars)`) into `target`, extending the partial binding `fixed`.
///
/// Returns the total-on-atom-variables binding, or `None` if no
/// homomorphism exists. Unconstrained variables not occurring in any atom
/// keep their `fixed` value (possibly `None`).
///
/// ```
/// use tgdkit_logic::{parse_tgd, Schema};
/// use tgdkit_instance::{parse_instance, Elem};
/// use tgdkit_hom::find_hom;
/// let mut schema = Schema::default();
/// let tgd = parse_tgd(&mut schema, "E(x,y), E(y,z) -> E(x,z)").unwrap();
/// let inst = parse_instance(&mut schema, "E(a,b), E(b,c)").unwrap();
/// let hom = find_hom(tgd.body(), tgd.var_count(), &inst, &vec![None; 3]);
/// assert!(hom.is_some());
/// ```
pub fn find_hom(
    atoms: &[Atom<Var>],
    num_vars: usize,
    target: &Instance,
    fixed: &Binding,
) -> Option<Binding> {
    let index = InstanceIndex::new(target);
    find_hom_indexed(atoms, num_vars, &index, fixed)
}

/// [`find_hom`] against a prebuilt [`InstanceIndex`] (reuse the index when
/// probing many conjunctions against the same instance).
pub fn find_hom_indexed(
    atoms: &[Atom<Var>],
    num_vars: usize,
    index: &InstanceIndex,
    fixed: &Binding,
) -> Option<Binding> {
    let mut result = None;
    search(atoms, num_vars, index, fixed, &mut |binding| {
        result = Some(binding.clone());
        ControlFlow::Break(())
    });
    result
}

/// [`for_each_hom`] against a prebuilt [`InstanceIndex`].
pub fn for_each_hom_indexed(
    atoms: &[Atom<Var>],
    num_vars: usize,
    index: &InstanceIndex,
    fixed: &Binding,
    visit: &mut dyn FnMut(&Binding) -> ControlFlow<()>,
) {
    search(atoms, num_vars, index, fixed, visit);
}

/// [`for_each_hom_indexed`] with a caller-owned binding buffer: `binding`
/// plays the role of the fixed partial assignment and serves in place as
/// the search's working state (grown to `num_vars` slots if shorter, and
/// restored to exactly its entry assignments on return). Hot probe loops
/// reuse one buffer across thousands of calls instead of cloning a fresh
/// `Binding` per probe.
pub fn for_each_hom_reusing(
    atoms: &[Atom<Var>],
    num_vars: usize,
    index: &InstanceIndex,
    binding: &mut Binding,
    visit: &mut dyn FnMut(&Binding) -> ControlFlow<()>,
) {
    search_in(atoms, num_vars, index, binding, visit);
}

/// Enumerates homomorphisms from `atoms` into `target`, invoking `visit` for
/// each; the callback can stop the enumeration early by returning
/// [`ControlFlow::Break`].
///
/// Distinct homomorphisms may agree on the variables of `atoms` only if the
/// search found them along different atom-match paths; callers needing
/// set-semantics answers should project and deduplicate (as [`crate::Cq`]
/// does).
pub fn for_each_hom(
    atoms: &[Atom<Var>],
    num_vars: usize,
    target: &Instance,
    fixed: &Binding,
    visit: &mut dyn FnMut(&Binding) -> ControlFlow<()>,
) {
    let index = InstanceIndex::new(target);
    search(atoms, num_vars, &index, fixed, visit);
}

/// Semi-naive enumeration: visits homomorphisms from `atoms` into the
/// indexed instance that use at least one `delta` fact, by anchoring each
/// atom at each delta fact in turn and searching the remaining atoms
/// against the full index.
///
/// This is the incremental-evaluation step of Datalog engines, applied to
/// trigger search: if the index covers `I ∪ Δ` and `delta = Δ`, the visited
/// bindings are exactly the homomorphisms into `I ∪ Δ` that are not
/// homomorphisms into `I`, **plus possible duplicates** when a match uses
/// several delta facts (one visit per anchoring); callers needing set
/// semantics must deduplicate (as the chase's trigger set does).
pub fn for_each_hom_seminaive(
    atoms: &[Atom<Var>],
    num_vars: usize,
    index: &InstanceIndex,
    delta: &[Fact],
    fixed: &Binding,
    visit: &mut dyn FnMut(&Binding) -> ControlFlow<()>,
) {
    for anchor in 0..atoms.len() {
        if for_each_hom_anchored(atoms, num_vars, index, anchor, delta, fixed, visit).is_break() {
            return;
        }
    }
}

/// One anchor's worth of [`for_each_hom_seminaive`]: binds atom `anchor` to
/// each `delta` fact in turn and searches the remaining atoms against the
/// full index. The sharded chase drives this directly — each shard supplies
/// its own delta slice per anchor, so the anchor loop lives with the caller
/// rather than here.
///
/// Returns [`ControlFlow::Break`] iff `visit` broke (so a caller looping
/// over anchors can stop early, exactly as the seminaive driver does).
pub fn for_each_hom_anchored(
    atoms: &[Atom<Var>],
    num_vars: usize,
    index: &InstanceIndex,
    anchor: usize,
    delta: &[Fact],
    fixed: &Binding,
    visit: &mut dyn FnMut(&Binding) -> ControlFlow<()>,
) -> ControlFlow<()> {
    let mut anchor_undo: Vec<u32> = Vec::new();
    let atom = &atoms[anchor];
    // The non-anchor conjunction is the same for every delta fact at
    // this anchor; build it once instead of once per fact.
    let rest: Vec<Atom<Var>> = atoms
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != anchor)
        .map(|(_, a)| a.clone())
        .collect();
    // The join plan depends only on which variables are bound — the
    // fixed ones plus the anchor atom's — not on the anchoring fact,
    // so one plan serves every delta fact at this anchor (and, through
    // the plan cache, every round requesting the same shape).
    let mut bound_vars: Vec<bool> = fixed.iter().map(Option::is_some).collect();
    bound_vars.resize(num_vars.max(fixed.len()), false);
    for v in &atom.args {
        bound_vars[v.index()] = true;
    }
    let one_step;
    let cached;
    let steps: &[PlanStep] = match rest.len() {
        0 => &[],
        1 => {
            // One remaining atom needs no planning or cache traffic.
            record_trivial_plan();
            one_step = [step_for(0, &rest[0], |vi| {
                bound_vars.get(vi).copied().unwrap_or(false)
            })];
            &one_step
        }
        _ => {
            cached = plan_join_cached(&rest, index, &bound_vars);
            &cached.steps
        }
    };
    let mut exec = Exec::new(&rest, steps, index);
    // One binding buffer per anchor, reset between facts by undoing the
    // anchor's own assignments (the executor restores everything else).
    let mut binding = fixed.clone();
    binding.resize(num_vars.max(fixed.len()), None);
    let mut stop = false;
    for fact in delta {
        if fact.pred != atom.pred || fact.args.len() != atom.args.len() {
            continue;
        }
        // Bind the anchor atom to the delta fact.
        anchor_undo.clear();
        let mut ok = true;
        for (&v, &e) in atom.args.iter().zip(&fact.args) {
            match binding[v.index()] {
                Some(prev) if prev != e => {
                    ok = false;
                    break;
                }
                Some(_) => {}
                None => {
                    binding[v.index()] = Some(e);
                    anchor_undo.push(v.index() as u32);
                }
            }
        }
        if ok {
            let _ = exec.run(0, &mut binding, &mut |binding| {
                let flow = visit(binding);
                stop = flow.is_break();
                flow
            });
        }
        for &vi in &anchor_undo {
            binding[vi as usize] = None;
        }
        if stop {
            break;
        }
    }
    exec.flush();
    if stop {
        ControlFlow::Break(())
    } else {
        ControlFlow::Continue(())
    }
}

/// The planned recursive search behind the public entry points: fetch the
/// compiled join plan once (inline for ≤1 atom, memoized otherwise), then
/// execute it.
fn search(
    atoms: &[Atom<Var>],
    num_vars: usize,
    index: &InstanceIndex,
    fixed: &Binding,
    visit: &mut dyn FnMut(&Binding) -> ControlFlow<()>,
) {
    let mut binding: Binding = fixed.clone();
    search_in(atoms, num_vars, index, &mut binding, visit);
}

/// [`search`] on a caller-owned working binding (the allocation-free core).
fn search_in(
    atoms: &[Atom<Var>],
    num_vars: usize,
    index: &InstanceIndex,
    binding: &mut Binding,
    visit: &mut dyn FnMut(&Binding) -> ControlFlow<()>,
) {
    if binding.len() < num_vars {
        binding.resize(num_vars, None);
    }
    // ≤1-atom conjunctions bypass the shared plan cache: a single atom has
    // exactly one evaluation order, and recomputing its step is cheaper
    // than a key hash plus a lock acquisition. Most probe traffic (linear
    // bodies, small CQ heads) lands here.
    let one_step;
    let cached;
    let steps: &[PlanStep] = match atoms.len() {
        0 => &[],
        1 => {
            record_trivial_plan();
            one_step = [step_for(0, &atoms[0], |vi| {
                binding.get(vi).is_some_and(|b| b.is_some())
            })];
            &one_step
        }
        _ => {
            let bound_vars: Vec<bool> = binding.iter().map(Option::is_some).collect();
            cached = plan_join_cached(atoms, index, &bound_vars);
            &cached.steps
        }
    };
    let mut exec = Exec::new(atoms, steps, index);
    let _ = exec.run(0, binding, visit);
    exec.flush();
}

/// Relations smaller than this stay on the nested-loop path even when a
/// multi-position hash join is possible — building a table over a handful
/// of rows costs more than scanning them.
const HASH_MIN_ROWS: usize = 16;

/// Locally accumulated join telemetry, flushed to the global counters once
/// per search so the hot loop touches no atomics.
#[derive(Default)]
struct JoinCounters {
    hash_joins: u64,
    nested_loop_joins: u64,
    build_rows: u64,
    probe_rows: u64,
}

/// One planned search over a fixed conjunction: the plan's step slice, the
/// index, and the per-search scratch state (a shared undo stack instead of
/// a per-tuple `Vec` of newly bound variables, and a reusable key buffer
/// for fully-bound probes).
struct Exec<'a> {
    atoms: &'a [Atom<Var>],
    steps: &'a [PlanStep],
    index: &'a InstanceIndex,
    undo: Vec<Var>,
    key_buf: Vec<Elem>,
    counters: JoinCounters,
}

std::thread_local! {
    /// Parked scratch buffers handed to the next [`Exec`] on this thread.
    /// Probe-heavy callers run millions of one-atom searches; without the
    /// pool each search pays a malloc/free for its first `undo`/`key_buf`
    /// push. A nested search (a visit callback starting its own) finds the
    /// slot empty and allocates fresh — correct, just unpooled.
    static EXEC_SCRATCH: std::cell::Cell<Option<(Vec<Var>, Vec<Elem>)>> =
        const { std::cell::Cell::new(None) };
}

impl<'a> Exec<'a> {
    fn new(atoms: &'a [Atom<Var>], steps: &'a [PlanStep], index: &'a InstanceIndex) -> Exec<'a> {
        let (undo, key_buf) = EXEC_SCRATCH.take().unwrap_or_default();
        Exec {
            atoms,
            steps,
            index,
            undo,
            key_buf,
            counters: JoinCounters::default(),
        }
    }

    /// Publishes the locally accumulated telemetry. Call once per search
    /// (re-running after a flush keeps accumulating from zero).
    fn flush(&mut self) {
        let c = std::mem::take(&mut self.counters);
        record_join_counters(
            c.hash_joins,
            c.nested_loop_joins,
            c.build_rows,
            c.probe_rows,
        );
    }

    /// Unifies the atom of step `depth` with row `row` of `tuples`,
    /// recursing on success; the binding is restored either way.
    fn try_row(
        &mut self,
        depth: usize,
        atom: &Atom<Var>,
        tuples: Tuples<'a>,
        row: usize,
        binding: &mut Binding,
        visit: &mut dyn FnMut(&Binding) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let mark = self.undo.len();
        let mut ok = true;
        for (pos, &v) in atom.args.iter().enumerate() {
            let e = tuples.at(row, pos);
            match binding[v.index()] {
                Some(prev) if prev == e => {}
                Some(_) => {
                    ok = false;
                    break;
                }
                None => {
                    binding[v.index()] = Some(e);
                    self.undo.push(v);
                }
            }
        }
        let flow = if ok {
            self.run(depth + 1, binding, visit)
        } else {
            ControlFlow::Continue(())
        };
        for v in self.undo.drain(mark..) {
            binding[v.index()] = None;
        }
        flow
    }

    /// Executes plan steps from `depth` on, visiting every extension of
    /// `binding` that matches the remaining atoms.
    fn run(
        &mut self,
        depth: usize,
        binding: &mut Binding,
        visit: &mut dyn FnMut(&Binding) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let Some(step) = self.steps.get(depth) else {
            return visit(binding);
        };
        let step = *step;
        let atoms = self.atoms;
        let index = self.index;
        let atom = &atoms[step.atom as usize];
        let arity = atom.args.len();
        let tuples = index.tuples(atom.pred);
        let rows = tuples.len();
        if rows == 0 {
            return ControlFlow::Continue(());
        }
        let n_bound = step.n_bound as usize;

        // Fully bound atom: a single containment probe against the index's
        // collision-safe membership table decides the step.
        if arity > 0 && n_bound == arity && arity <= 64 {
            self.counters.hash_joins += 1;
            self.counters.probe_rows += 1;
            let mut key_buf = std::mem::take(&mut self.key_buf);
            key_buf.clear();
            key_buf.extend(
                atom.args
                    .iter()
                    .map(|v| binding[v.index()].expect("planned-bound var is bound")),
            );
            let present = index.contains(atom.pred, &key_buf);
            self.key_buf = key_buf;
            if !present {
                return ControlFlow::Continue(());
            }
            return self.run(depth + 1, binding, visit);
        }

        // Two or more bound positions over a non-tiny relation: hash join.
        // Probe the cached join table with the joint key of the bound
        // values; candidates are verified by unification, so collisions and
        // unbound-position constraints are handled uniformly.
        if n_bound >= 2 && rows >= HASH_MIN_ROWS {
            if let Some((table, built)) = index.join_table(atom.pred, step.bound_mask) {
                self.counters.build_rows += built;
                self.counters.hash_joins += 1;
                let key = store::tuple_hash_iter(
                    atom.args
                        .iter()
                        .enumerate()
                        .filter(|&(pos, _)| pos < 64 && step.bound_mask >> pos & 1 == 1)
                        .map(|(_, v)| binding[v.index()].expect("planned-bound var is bound")),
                );
                let candidates = table.probe(key);
                self.counters.probe_rows += candidates.len() as u64;
                let mut flow = ControlFlow::Continue(());
                for &r in candidates {
                    flow = self.try_row(depth, atom, tuples, r as usize, binding, visit);
                    if flow.is_break() {
                        break;
                    }
                }
                return flow;
            }
        }

        // At least one bound position: indexed nested loop over the
        // shortest postings list among the bound positions.
        if n_bound >= 1 {
            self.counters.nested_loop_joins += 1;
            let mut source: Option<&[u32]> = None;
            for (pos, &v) in atom.args.iter().enumerate() {
                if pos < 64 && step.bound_mask >> pos & 1 == 1 {
                    let e = binding[v.index()].expect("planned-bound var is bound");
                    let postings = index.postings(atom.pred, pos, e);
                    if source.is_none_or(|s| postings.len() < s.len()) {
                        source = Some(postings);
                    }
                }
            }
            let mut flow = ControlFlow::Continue(());
            for &r in source.unwrap_or(&[]) {
                flow = self.try_row(depth, atom, tuples, r as usize, binding, visit);
                if flow.is_break() {
                    break;
                }
            }
            return flow;
        }

        // Nothing bound. With a repeated variable in the atom, filter rows
        // by a chunked equality scan over the two contiguous column slices
        // (64 rows per bitmask word — branch-free and SIMD-friendly) before
        // unifying; otherwise scan every row.
        self.counters.nested_loop_joins += 1;
        if let Some((p, q)) = step.rep_pair {
            let ca = tuples.col(p as usize);
            let cb = tuples.col(q as usize);
            let mut base = 0usize;
            while base < rows {
                let end = (base + 64).min(rows);
                let mut mask = 0u64;
                for i in base..end {
                    mask |= ((ca[i] == cb[i]) as u64) << (i - base);
                }
                while mask != 0 {
                    let r = base + mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let flow = self.try_row(depth, atom, tuples, r, binding, visit);
                    if flow.is_break() {
                        return flow;
                    }
                }
                base = end;
            }
            return ControlFlow::Continue(());
        }
        let mut flow = ControlFlow::Continue(());
        for r in 0..rows {
            flow = self.try_row(depth, atom, tuples, r, binding, visit);
            if flow.is_break() {
                break;
            }
        }
        flow
    }
}

impl Drop for Exec<'_> {
    fn drop(&mut self) {
        self.undo.clear();
        EXEC_SCRATCH.set(Some((
            std::mem::take(&mut self.undo),
            std::mem::take(&mut self.key_buf),
        )));
    }
}

/// Finds a homomorphism `h : adom(src) → dom(dst)` with
/// `h(facts(src)) ⊆ facts(dst)`, extending the partial element map `fixed`.
///
/// Returns the mapping on `adom(src)`, or `None`. This is the paper's notion
/// of an embedding of one instance's facts into another; with `fixed` set to
/// the identity on a set `F` it is exactly the mapping required by the
/// locality definitions (§3.3, §6.1, §7.1, §8.1).
pub fn find_instance_hom(
    src: &Instance,
    dst: &Instance,
    fixed: &BTreeMap<Elem, Elem>,
) -> Option<BTreeMap<Elem, Elem>> {
    // Convert src's facts to a conjunction with one variable per active
    // element.
    let adom: Vec<Elem> = src.active_domain().iter().copied().collect();
    let var_of: BTreeMap<Elem, Var> = adom
        .iter()
        .enumerate()
        .map(|(i, &e)| (e, Var(i as u32)))
        .collect();
    let atoms: Vec<Atom<Var>> = src
        .facts()
        .map(|f| Atom::new(f.pred, f.args.iter().map(|e| var_of[e]).collect()))
        .collect();
    let mut fixed_binding: Binding = vec![None; adom.len()];
    for (e, v) in &var_of {
        if let Some(target) = fixed.get(e) {
            fixed_binding[v.index()] = Some(*target);
        }
    }
    let binding = find_hom(&atoms, adom.len(), dst, &fixed_binding)?;
    Some(
        adom.iter()
            .enumerate()
            .map(|(i, &e)| (e, binding[i].expect("active element is bound")))
            .collect(),
    )
}

/// `true` when there is a homomorphism from `src` into `dst` that is the
/// identity on `fixed` (which need not be a subset of `adom(src)`; elements
/// of `fixed` not active in `src` are unconstrained).
pub fn embeds_fixing(src: &Instance, dst: &Instance, fixed: &[Elem]) -> bool {
    let map: BTreeMap<Elem, Elem> = fixed.iter().map(|&e| (e, e)).collect();
    find_instance_hom(src, dst, &map).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgdkit_instance::parse_instance;
    use tgdkit_logic::{parse_tgd, Schema};

    #[test]
    fn path_into_cycle() {
        let mut s = Schema::default();
        let path = parse_instance(&mut s, "E(a,b), E(b,c), E(c,d)").unwrap();
        let cycle = parse_instance(&mut s, "E(p,q), E(q,p)").unwrap();
        // A path maps into a cycle, not vice versa (cycle of odd length 2?
        // E(p,q),E(q,p) is a 2-cycle; a 3-path maps onto it).
        assert!(find_instance_hom(&path, &cycle, &BTreeMap::new()).is_some());
        // The 2-cycle does not map into the path (no cycle in the path).
        assert!(find_instance_hom(&cycle, &path, &BTreeMap::new()).is_none());
    }

    #[test]
    fn hom_respects_fixed_elements() {
        let mut s = Schema::default();
        let src = parse_instance(&mut s, "E(a,b)").unwrap();
        let dst = parse_instance(&mut s, "E(a,b), E(b,a)").unwrap();
        let a_src = src.elem_by_name("a").unwrap();
        let b_dst = dst.elem_by_name("b").unwrap();
        // Pin a ↦ b: the only extension maps b ↦ a.
        let fixed: BTreeMap<Elem, Elem> = [(a_src, b_dst)].into_iter().collect();
        let hom = find_instance_hom(&src, &dst, &fixed).unwrap();
        assert_eq!(hom[&a_src], b_dst);
        let b_src = src.elem_by_name("b").unwrap();
        assert_eq!(hom[&b_src], dst.elem_by_name("a").unwrap());
    }

    #[test]
    fn embeds_fixing_identity() {
        let mut s = Schema::default();
        // dst extends src: identity embedding exists.
        let src = parse_instance(&mut s, "E(a,b)").unwrap();
        let mut dst = src.clone();
        let e = s.pred_id("E").unwrap();
        dst.add_fact(e, vec![Elem(1), Elem(0)]);
        assert!(embeds_fixing(&src, &dst, &[Elem(0), Elem(1)]));
        // But src does not embed into a *disjoint* copy while fixing its
        // elements.
        let mut disjoint = tgdkit_instance::Instance::new(src.schema().clone());
        disjoint.add_fact(e, vec![Elem(10), Elem(11)]);
        assert!(!embeds_fixing(&src, &disjoint, &[Elem(0), Elem(1)]));
        assert!(find_instance_hom(&src, &disjoint, &BTreeMap::new()).is_some());
    }

    #[test]
    fn repeated_variables_constrain_matches() {
        let mut s = Schema::default();
        let tgd = parse_tgd(&mut s, "E(x,x) -> T(x)").unwrap();
        let no_loop = parse_instance(&mut s, "E(a,b), E(b,a)").unwrap();
        assert!(find_hom(tgd.body(), tgd.var_count(), &no_loop, &vec![None; 1]).is_none());
        let with_loop = parse_instance(&mut s, "E(a,a)").unwrap();
        assert!(find_hom(tgd.body(), tgd.var_count(), &with_loop, &vec![None; 1]).is_some());
    }

    #[test]
    fn enumeration_visits_all_matches() {
        let mut s = Schema::default();
        let tgd = parse_tgd(&mut s, "E(x,y) -> T(x)").unwrap();
        let inst = parse_instance(&mut s, "E(a,b), E(b,c), E(a,c)").unwrap();
        let mut seen = Vec::new();
        for_each_hom(
            tgd.body(),
            tgd.var_count(),
            &inst,
            &vec![None; 2],
            &mut |b| {
                seen.push((b[0].unwrap(), b[1].unwrap()));
                ControlFlow::Continue(())
            },
        );
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn early_break_stops_enumeration() {
        let mut s = Schema::default();
        let tgd = parse_tgd(&mut s, "E(x,y) -> T(x)").unwrap();
        let inst = parse_instance(&mut s, "E(a,b), E(b,c), E(a,c)").unwrap();
        let mut count = 0;
        for_each_hom(
            tgd.body(),
            tgd.var_count(),
            &inst,
            &vec![None; 2],
            &mut |_| {
                count += 1;
                ControlFlow::Break(())
            },
        );
        assert_eq!(count, 1);
    }

    #[test]
    fn empty_conjunction_has_trivial_hom() {
        let mut s = Schema::default();
        let inst = parse_instance(&mut s, "E(a,b)").unwrap();
        let hom = find_hom(&[], 0, &inst, &Binding::new());
        assert!(hom.is_some());
    }

    #[test]
    fn cross_predicate_join() {
        let mut s = Schema::default();
        let tgd = parse_tgd(&mut s, "R(x,y), S(y,z) -> T(x,z)").unwrap();
        let inst = parse_instance(&mut s, "R(a,b), S(c,d)").unwrap();
        // b ≠ c: no join.
        assert!(find_hom(tgd.body(), tgd.var_count(), &inst, &vec![None; 3]).is_none());
        let inst2 = parse_instance(&mut s, "R(a,b), S(b,d)").unwrap();
        let hom = find_hom(tgd.body(), tgd.var_count(), &inst2, &vec![None; 3]).unwrap();
        // The join variable y must be bound to the one element occurring in
        // both R (2nd position) and S (1st position).
        assert_eq!(hom[0], inst2.elem_by_name("a"));
        assert_eq!(hom[1], inst2.elem_by_name("b"));
        assert_eq!(hom[2], inst2.elem_by_name("d"));
    }

    #[test]
    fn fixed_binding_prunes_search() {
        let mut s = Schema::default();
        let tgd = parse_tgd(&mut s, "E(x,y) -> T(x)").unwrap();
        let inst = parse_instance(&mut s, "E(a,b), E(b,c)").unwrap();
        let b = inst.elem_by_name("b").unwrap();
        let mut fixed: Binding = vec![None; 2];
        fixed[0] = Some(b);
        let hom = find_hom(tgd.body(), tgd.var_count(), &inst, &fixed).unwrap();
        assert_eq!(hom[0], Some(b));
        assert_eq!(hom[1], Some(inst.elem_by_name("c").unwrap()));
    }
}
