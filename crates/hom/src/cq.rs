//! Conjunctive queries over instances.

use crate::hom::{for_each_hom, for_each_hom_indexed, Binding};
use crate::index::InstanceIndex;
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use tgdkit_instance::{Elem, Instance};
use tgdkit_logic::{conjunction_vars, Atom, LogicError, Schema, Var};

/// A conjunctive query `q(x̄) :- φ(x̄, ȳ)` with answer variables `x̄`.
///
/// Boolean CQs have an empty answer tuple. Evaluation is set-semantics: the
/// answers are deduplicated projections of the homomorphisms from the body
/// into the instance.
///
/// ```
/// use tgdkit_logic::{parse_tgd, Schema};
/// use tgdkit_instance::parse_instance;
/// use tgdkit_hom::Cq;
/// let mut schema = Schema::default();
/// // Query: pairs connected by a 2-step path.
/// let tgd = parse_tgd(&mut schema, "E(x,y), E(y,z) -> Ans(x,z)").unwrap();
/// let q = Cq::new(tgd.body().to_vec(), vec![tgdkit_logic::Var(0), tgdkit_logic::Var(2)]).unwrap();
/// let inst = parse_instance(&mut schema, "E(a,b), E(b,c), E(b,d)").unwrap();
/// assert_eq!(q.eval(&inst).len(), 2); // (a,c), (a,d)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cq {
    atoms: Vec<Atom<Var>>,
    answer: Vec<Var>,
    num_vars: usize,
}

impl Cq {
    /// Builds a CQ; every answer variable must occur in the body.
    pub fn new(atoms: Vec<Atom<Var>>, answer: Vec<Var>) -> Result<Cq, LogicError> {
        let vars = conjunction_vars(&atoms);
        for v in &answer {
            if !vars.contains(v) {
                return Err(LogicError::UnsafeHeadVariable(*v));
            }
        }
        let num_vars = vars.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        Ok(Cq {
            atoms,
            answer,
            num_vars,
        })
    }

    /// A Boolean CQ (no answer variables).
    pub fn boolean(atoms: Vec<Atom<Var>>) -> Cq {
        let num_vars = conjunction_vars(&atoms)
            .iter()
            .map(|v| v.index() + 1)
            .max()
            .unwrap_or(0);
        Cq {
            atoms,
            answer: Vec::new(),
            num_vars,
        }
    }

    /// The body atoms.
    pub fn atoms(&self) -> &[Atom<Var>] {
        &self.atoms
    }

    /// The answer variables.
    pub fn answer_vars(&self) -> &[Var] {
        &self.answer
    }

    /// Number of variables (dense upper bound).
    pub fn var_count(&self) -> usize {
        self.num_vars
    }

    /// Validates the atoms against `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<(), LogicError> {
        for atom in &self.atoms {
            atom.validate(schema)?;
        }
        Ok(())
    }

    /// Evaluates the query, returning the set of answer tuples.
    pub fn eval(&self, instance: &Instance) -> BTreeSet<Vec<Elem>> {
        let mut out = BTreeSet::new();
        let fixed: Binding = vec![None; self.num_vars];
        for_each_hom(&self.atoms, self.num_vars, instance, &fixed, &mut |b| {
            out.insert(
                self.answer
                    .iter()
                    .map(|v| b[v.index()].expect("answer var bound"))
                    .collect(),
            );
            ControlFlow::Continue(())
        });
        out
    }

    /// `true` when the query has at least one match (for Boolean CQs this is
    /// the query's truth value).
    pub fn holds_in(&self, instance: &Instance) -> bool {
        let fixed: Binding = vec![None; self.num_vars];
        let mut found = false;
        for_each_hom(&self.atoms, self.num_vars, instance, &fixed, &mut |_| {
            found = true;
            ControlFlow::Break(())
        });
        found
    }

    /// Evaluates with some variables pre-bound (used for entailment checks
    /// where the frontier is frozen).
    pub fn holds_with(&self, instance: &Instance, fixed: &Binding) -> bool {
        let mut padded = fixed.clone();
        padded.resize(self.num_vars.max(fixed.len()), None);
        let mut found = false;
        for_each_hom(&self.atoms, self.num_vars, instance, &padded, &mut |_| {
            found = true;
            ControlFlow::Break(())
        });
        found
    }

    /// [`Cq::holds_with`] against a prebuilt [`InstanceIndex`] (reuse the
    /// index when probing many bindings against the same instance).
    pub fn holds_with_indexed(&self, index: &InstanceIndex, fixed: &Binding) -> bool {
        let mut padded = fixed.clone();
        padded.resize(self.num_vars.max(fixed.len()), None);
        let mut found = false;
        for_each_hom_indexed(&self.atoms, self.num_vars, index, &padded, &mut |_| {
            found = true;
            ControlFlow::Break(())
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgdkit_instance::parse_instance;
    use tgdkit_logic::parse_tgd;

    #[test]
    fn boolean_cq_truth() {
        let mut s = Schema::default();
        let tgd = parse_tgd(&mut s, "E(x,y), E(y,x) -> T(x)").unwrap();
        let q = Cq::boolean(tgd.body().to_vec());
        let sym = parse_instance(&mut s, "E(a,b), E(b,a)").unwrap();
        let asym = parse_instance(&mut s, "E(a,b), E(b,c)").unwrap();
        assert!(q.holds_in(&sym));
        assert!(!q.holds_in(&asym));
    }

    #[test]
    fn answers_are_set_semantics() {
        let mut s = Schema::default();
        let tgd = parse_tgd(&mut s, "E(x,y) -> T(x)").unwrap();
        let q = Cq::new(tgd.body().to_vec(), vec![Var(0)]).unwrap();
        // a has two outgoing edges but appears once in the answer.
        let inst = parse_instance(&mut s, "E(a,b), E(a,c), E(b,c)").unwrap();
        assert_eq!(q.eval(&inst).len(), 2);
    }

    #[test]
    fn unsafe_answer_variable_rejected() {
        let mut s = Schema::default();
        let tgd = parse_tgd(&mut s, "E(x,y) -> T(x)").unwrap();
        assert!(Cq::new(tgd.body().to_vec(), vec![Var(9)]).is_err());
    }

    #[test]
    fn prebound_evaluation() {
        let mut s = Schema::default();
        let tgd = parse_tgd(&mut s, "E(x,y) -> T(x)").unwrap();
        let q = Cq::boolean(tgd.body().to_vec());
        let inst = parse_instance(&mut s, "E(a,b)").unwrap();
        let b = inst.elem_by_name("b").unwrap();
        // x pinned to b: no outgoing edge from b.
        let mut fixed: Binding = vec![None; 2];
        fixed[0] = Some(b);
        assert!(!q.holds_with(&inst, &fixed));
        fixed[0] = Some(inst.elem_by_name("a").unwrap());
        assert!(q.holds_with(&inst, &fixed));
    }

    #[test]
    fn empty_query_always_holds() {
        let mut s = Schema::default();
        let inst = parse_instance(&mut s, "").unwrap();
        let q = Cq::boolean(vec![]);
        assert!(q.holds_in(&inst));
        assert_eq!(q.eval(&inst).len(), 1); // the empty tuple
    }
}
