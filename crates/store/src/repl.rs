//! Quorum-acknowledged segment replication with verified failover.
//!
//! A [`ReplicatedKb`] keeps N byte-identical copies of a [`DurableKb`]
//! directory layout under one root:
//!
//! ```text
//! kb-root/
//!   replica-00/   snapshot-NNNNNN.tgks · wal-NNNNNN.tgkw · store.tgkm
//!   replica-01/   (same files, same bytes)
//!   replica-02/   …
//! ```
//!
//! The fold runs **once** in memory; the resulting WAL frame (the same
//! sealed TGCK frame a [`DurableKb`] writes) fans out to every healthy
//! replica with the fsync-before-acknowledge discipline of
//! [`SegmentWriter::append_frame`]. The batch is acknowledged — committed
//! to memory and reported to the caller — only once at least `quorum`
//! replicas hold it durably. Because an acknowledged frame lives on ≥
//! `quorum` disks, losing any `quorum - 1` replicas can never lose an
//! acknowledged fact.
//!
//! ## Health, retry, repair
//!
//! Each replica is `Healthy` (holds exactly the acknowledged timeline and
//! takes appends), `Lagging` (missed at least one frame — it must NOT take
//! further appends, or recovery would truncate at the sequence gap), or
//! `Wedged` (its handle died: torn write that retries could not clear, an
//! injected [`FaultSite::ReplicaKill`], or [`ReplicatedKb::kill_replica`]).
//! Transient append faults (injected [`FaultSite::ReplicaAppendFail`],
//! fsync failures, torn writes, real I/O errors) are retried a bounded
//! number of times with deterministically jittered backoff before the
//! replica is demoted. Demoted replicas are healed by catch-up repair —
//! re-shipping the current generation's files byte-for-byte from a healthy
//! peer — piggybacked on subsequent applies with exponential skip-backoff,
//! or on demand via [`ReplicatedKb::repair`].
//!
//! ## Quorum loss and failover
//!
//! When fewer than `quorum` replicas can take a write, the store degrades
//! to read-only: applies fail with the typed
//! [`StoreError::QuorumLost`] (never a panic, never a silent drop) while
//! reads keep serving the in-memory closure. If a batch reaches some
//! replicas but not `quorum`, the successful replicas are rolled back
//! (WAL truncated to the pre-append length) so that no replica ever holds
//! a frame the caller was told failed — recovery can then never resurrect
//! an unacknowledged batch.
//!
//! On open, each replica directory is probed for its *verified
//! acknowledged prefix* (newest verifying snapshot + the WAL prefix that
//! checksums and sequence-chains); the replica with the longest prefix is
//! elected, recovered through the ordinary [`DurableKb`] recovery path
//! (re-chasing exactly as a single store would), and every other replica
//! is repaired to byte-identity with it. Electing any replica other than
//! `replica-00` counts as a failover in [`ReplStats`].

use crate::kb::{
    decode_snapshot, discover_generations, encode_snapshot, fold_batch, has_wal_files,
    snapshot_name, truncate_file, wal_name, ApplyReport, DurableKb, KbConfig, RecoveryReport,
    MARKER_NAME,
};
use crate::segment::{
    backoff_sleep, io_err, scan_frames, write_atomic, SegmentWriter, StoreError, KIND_SNAPSHOT,
    KIND_WAL_BATCH,
};
use crate::wal::WalBatch;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use tgdkit_chase::checkpoint::{tgds_fingerprint, CheckpointError};
use tgdkit_chase::{CancelToken, FaultSite};
use tgdkit_instance::{Elem, Fact, Instance};
use tgdkit_logic::{PredId, Schema, Tgd, TgdSet};

/// Applies a killed replica sits out before opportunistic catch-up repair
/// may re-admit it (an explicit [`ReplicatedKb::repair`] ignores this).
pub const KILL_REPAIR_SKIP: u64 = 2;

/// One replica's availability state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// Holds exactly the acknowledged timeline; takes appends.
    Healthy,
    /// Missed at least one acknowledged frame (or a failed compaction /
    /// rollback); excluded from appends until catch-up repair re-ships the
    /// current generation.
    Lagging,
    /// The replica's handle is gone (killed, or a torn write that bounded
    /// retries could not clear); excluded from appends until repair.
    Wedged,
}

/// Cumulative counters for one [`ReplicatedKb`] handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplStats {
    /// Batches acknowledged at quorum.
    pub acks: u64,
    /// Acknowledged batches that reached quorum but not every replica —
    /// the write "waited" only for the quorum and left stragglers to
    /// catch-up repair.
    pub quorum_waits: u64,
    /// Per-replica append retries taken for transient faults.
    pub retries: u64,
    /// Replicas repaired back to byte-identity (catch-up or failover).
    pub repairs: u64,
    /// Opens that elected a replica other than `replica-00`.
    pub failovers: u64,
    /// Applies refused with [`StoreError::QuorumLost`].
    pub quorum_losses: u64,
    /// Current bytes of acknowledged WAL the non-healthy replicas are
    /// missing (drops to 0 as repairs land).
    pub lag_bytes: u64,
}

/// What [`ReplicatedKb::open`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplRecoveryReport {
    /// Index of the replica with the longest verified acknowledged
    /// prefix, whose timeline the store continues.
    pub elected: usize,
    /// `true` when the elected replica was not `replica-00`.
    pub failover: bool,
    /// Replicas repaired to byte-identity with the elected one.
    pub repaired: usize,
    /// The elected replica's recovery report.
    pub report: RecoveryReport,
}

#[derive(Debug)]
struct Replica {
    dir: PathBuf,
    health: ReplicaHealth,
    /// Open WAL writer; `None` while not `Healthy`.
    wal: Option<SegmentWriter>,
    /// Acknowledged WAL bytes this replica is missing.
    lag_bytes: u64,
    /// Consecutive failed repair attempts (drives the skip backoff).
    repair_attempts: u32,
    /// Applies to skip before the next opportunistic repair attempt.
    repair_skip: u64,
}

/// What a replica directory held when probed, without chasing anything.
enum Probe {
    /// No store files at all: safe to initialize.
    Fresh,
    /// Store files exist but nothing verifies (or the files were deleted
    /// out from under a marker): a candidate for repair, never for
    /// election or silent re-initialization.
    Damaged,
    /// The newest verifying snapshot plus its sequence-chained WAL prefix.
    /// Equal `(generation, seq)` implies byte-identical verified prefixes,
    /// because WAL frames are a deterministic encoding of the batch
    /// sequence.
    Verified { generation: u64, seq: u64 },
}

/// A knowledge base whose acknowledged timeline survives the loss of any
/// `quorum - 1` of its N replica directories. See the module docs.
#[derive(Debug)]
pub struct ReplicatedKb {
    root: PathBuf,
    schema: Schema,
    tgds: Vec<Tgd>,
    sigma_fp: u64,
    config: KbConfig,
    quorum: usize,
    generation: u64,
    seq: u64,
    base: Instance,
    chased: Instance,
    nulls: BTreeSet<Elem>,
    replicas: Vec<Replica>,
    stats: ReplStats,
}

impl ReplicatedKb {
    /// Opens (or initializes) the replicated store under `root`. See
    /// [`ReplicatedKb::open_governed`].
    pub fn open(
        root: &Path,
        set: &TgdSet,
        config: KbConfig,
    ) -> Result<(Self, ReplRecoveryReport), StoreError> {
        Self::open_governed(root, set, config, &CancelToken::new())
    }

    /// Opens the replicated store: probe every replica's verified
    /// acknowledged prefix, elect the longest (ties to the lowest index),
    /// recover it through the [`DurableKb`] recovery path — re-chase and
    /// all — and repair every other replica to byte-identity with it.
    ///
    /// A root where some replica holds damaged store files but none
    /// verifies is an error, not a re-initialization; a root with no
    /// store files anywhere initializes generation 0 on every replica.
    pub fn open_governed(
        root: &Path,
        set: &TgdSet,
        config: KbConfig,
        token: &CancelToken,
    ) -> Result<(Self, ReplRecoveryReport), StoreError> {
        let n = config.replicas.max(1);
        let quorum = config.quorum.clamp(1, n);
        std::fs::create_dir_all(root).map_err(|e| io_err("create-dir", root, e))?;
        let schema = set.schema().clone();
        let sigma_fp = tgds_fingerprint(set.tgds());
        let dirs: Vec<PathBuf> = (0..n)
            .map(|i| root.join(format!("replica-{i:02}")))
            .collect();

        let mut probes = Vec::with_capacity(n);
        for dir in &dirs {
            probes.push(probe_dir(dir, &schema, sigma_fp, token)?);
        }
        let elected = probes
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match p {
                Probe::Verified { seq, .. } => Some((i, *seq)),
                _ => None,
            })
            .max_by(|(ia, sa), (ib, sb)| sa.cmp(sb).then(ib.cmp(ia)))
            .map(|(i, _)| i);
        let elected = match elected {
            Some(i) => i,
            None if probes.iter().all(|p| matches!(p, Probe::Fresh)) => 0,
            None => {
                return Err(StoreError::Frame(CheckpointError::Malformed(
                    "no replica holds a verifying store (files damaged or deleted)",
                )))
            }
        };

        // Recover the elected replica exactly as a single store would:
        // newest verifying snapshot, sequence-chained WAL replay with the
        // re-chase discipline of the fold, damage truncated in place.
        let (kb, report) = DurableKb::open_governed(&dirs[elected], set, config, token)?;
        let wal_len = kb.wal_bytes();
        let (generation, seq, base, chased, nulls) = kb.into_state();

        let mut stats = ReplStats::default();
        let failover = elected != 0;
        if failover {
            stats.failovers += 1;
        }

        // Bring every other replica to byte-identity with the elected one.
        let tgds = set.tgds().to_vec();
        let mut replicas = Vec::with_capacity(n);
        let mut repaired = 0usize;
        for (i, dir) in dirs.iter().enumerate() {
            let identical = i == elected
                || matches!(
                    probes[i],
                    Probe::Verified { generation: g, seq: s, .. }
                        if g == generation && s == seq
                );
            let readied = if identical {
                // Same verified prefix: drop any torn tail / stale files
                // in place instead of copying what is already there.
                trim_to_generation(dir, generation, wal_len, token)
            } else {
                copy_store_files(&dirs[elected], dir, generation, wal_len, token).map(|()| {
                    // Seeding a brand-new store's empty replicas is not a
                    // repair; re-shipping to a replica that fell behind is.
                    if !report.fresh {
                        repaired += 1;
                        stats.repairs += 1;
                    }
                })
            };
            let wal_path = dir.join(wal_name(generation));
            let replica =
                match readied.and_then(|()| SegmentWriter::open_append(&wal_path, wal_len)) {
                    Ok(wal) => Replica {
                        dir: dir.clone(),
                        health: ReplicaHealth::Healthy,
                        wal: Some(wal),
                        lag_bytes: 0,
                        repair_attempts: 0,
                        repair_skip: 0,
                    },
                    // A replica that cannot be readied does not block the
                    // open (quorum may still hold); it stays lagging until a
                    // later repair succeeds.
                    Err(_) => Replica {
                        dir: dir.clone(),
                        health: ReplicaHealth::Lagging,
                        wal: None,
                        lag_bytes: wal_len,
                        repair_attempts: 1,
                        repair_skip: 1,
                    },
                };
            replicas.push(replica);
        }

        let repl = ReplicatedKb {
            root: root.to_path_buf(),
            schema,
            tgds,
            sigma_fp,
            config,
            quorum,
            generation,
            seq,
            base,
            chased,
            nulls,
            replicas,
            stats,
        };
        let repl_report = ReplRecoveryReport {
            elected,
            failover,
            repaired,
            report,
        };
        Ok((repl, repl_report))
    }

    /// Applies one batch at quorum: fold once in memory, fan the sealed
    /// WAL frame to every healthy replica (bounded jittered retries for
    /// transient faults), and acknowledge — commit to memory — only once
    /// `quorum` replicas hold the frame durably. Short of quorum, every
    /// replica that did take the frame is rolled back and the typed
    /// [`StoreError::QuorumLost`] is returned; reads keep working.
    pub fn apply_governed(
        &mut self,
        inserts: &[Fact],
        retracts: &[Fact],
        token: &CancelToken,
    ) -> Result<ApplyReport, StoreError> {
        // Piggybacked catch-up: lagging/wedged replicas get a repair
        // attempt (under skip backoff) before the quorum check, so a
        // degraded store heals itself back over quorum when the disks do.
        self.opportunistic_repair(token);
        let healthy = self.healthy_count();
        if healthy < self.quorum {
            self.stats.quorum_losses += 1;
            return Err(StoreError::QuorumLost {
                healthy,
                quorum: self.quorum,
            });
        }
        let folded = fold_batch(
            &self.base,
            &self.chased,
            &self.nulls,
            inserts,
            retracts,
            &self.tgds,
            &self.config,
            token,
        )?;
        let frame = WalBatch {
            seq: self.seq,
            inserts: inserts.to_vec(),
            retracts: retracts.to_vec(),
        }
        .encode();

        let mut appended: Vec<(usize, u64)> = Vec::with_capacity(self.replicas.len());
        for i in 0..self.replicas.len() {
            if self.replicas[i].health != ReplicaHealth::Healthy {
                self.replicas[i].lag_bytes += frame.len() as u64;
                continue;
            }
            let pre_len = self.replicas[i].wal.as_ref().map_or(0, SegmentWriter::len);
            if self.append_to_replica(i, &frame, token) {
                appended.push((i, pre_len));
            }
        }

        if appended.len() < self.quorum {
            // Quorum failed: the batch is NOT acknowledged, so the
            // replicas that did write it must forget it — otherwise a
            // failover could serve a fact the client was told was lost.
            for &(i, pre_len) in &appended {
                let rolled_back = match self.replicas[i].wal.as_mut() {
                    Some(wal) => wal.truncate_to(pre_len, token).is_ok(),
                    None => false,
                };
                if !rolled_back {
                    self.replicas[i].health = ReplicaHealth::Wedged;
                    self.replicas[i].wal = None;
                    self.replicas[i].lag_bytes += frame.len() as u64;
                }
            }
            self.stats.quorum_losses += 1;
            return Err(StoreError::QuorumLost {
                healthy: appended.len(),
                quorum: self.quorum,
            });
        }

        // Acknowledged: commit memory in the same step.
        self.base = folded.base;
        self.chased = folded.chased;
        self.nulls = folded.nulls;
        self.seq += 1;
        self.stats.acks += 1;
        if appended.len() < self.replicas.len() {
            self.stats.quorum_waits += 1;
        }
        let wal_bytes = self
            .replicas
            .iter()
            .find(|r| r.health == ReplicaHealth::Healthy)
            .and_then(|r| r.wal.as_ref())
            .map_or(0, SegmentWriter::len);
        let mut compacted = false;
        if wal_bytes >= self.config.compact_wal_bytes {
            compacted = self.compact_governed(token).is_ok();
        }
        Ok(ApplyReport {
            seq: self.seq - 1,
            rechased: folded.rechased,
            compacted,
            fact_count: self.chased.fact_count(),
        })
    }

    /// [`ReplicatedKb::apply_governed`] with a fresh token.
    pub fn apply(
        &mut self,
        inserts: &[Fact],
        retracts: &[Fact],
    ) -> Result<ApplyReport, StoreError> {
        self.apply_governed(inserts, retracts, &CancelToken::new())
    }

    /// Appends `frame` to replica `i` with bounded, jittered retries for
    /// transient faults. On failure the replica is demoted (`Lagging` for
    /// a missed frame, `Wedged` for a dead handle) and its lag accounted.
    fn append_to_replica(&mut self, i: usize, frame: &[u8], token: &CancelToken) -> bool {
        // An injected kill takes the whole replica down mid-append — the
        // SIGKILL analogue. Not retryable; repair must re-admit it, and
        // not before the kill's skip backoff elapses (a killed node is
        // not back on the next write).
        if token.fault(FaultSite::ReplicaKill) {
            self.replicas[i].health = ReplicaHealth::Wedged;
            self.replicas[i].wal = None;
            self.replicas[i].lag_bytes += frame.len() as u64;
            self.replicas[i].repair_skip = self.replicas[i].repair_skip.max(KILL_REPAIR_SKIP);
            return false;
        }
        // An injected lag silently misses the frame (slow disk, congested
        // peer): no error surfaces, the replica just falls behind.
        if token.fault(FaultSite::ReplicaLag) {
            self.replicas[i].health = ReplicaHealth::Lagging;
            self.replicas[i].lag_bytes += frame.len() as u64;
            return false;
        }
        let pre_len = self.replicas[i].wal.as_ref().map_or(0, SegmentWriter::len);
        let mut attempt = 0u32;
        loop {
            let result = if token.fault(FaultSite::ReplicaAppendFail) {
                Err(StoreError::Io {
                    op: "replica-append",
                    path: self.replicas[i].dir.display().to_string(),
                    kind: std::io::ErrorKind::Interrupted,
                })
            } else {
                match self.replicas[i].wal.as_mut() {
                    Some(wal) => wal.append_frame(frame, token).map(|_| ()),
                    None => Err(StoreError::Wedged),
                }
            };
            match result {
                Ok(()) => return true,
                Err(e) if attempt < self.config.replica_retries => {
                    // A torn write leaves garbage on this replica's disk;
                    // truncating it back to the acknowledged prefix makes
                    // the fault retryable like any other.
                    if matches!(e, StoreError::TornWrite { .. }) {
                        if let Some(wal) = self.replicas[i].wal.as_mut() {
                            if wal.truncate_to(pre_len, token).is_err() {
                                self.replicas[i].health = ReplicaHealth::Wedged;
                                self.replicas[i].wal = None;
                                self.replicas[i].lag_bytes += frame.len() as u64;
                                return false;
                            }
                        }
                    }
                    attempt += 1;
                    self.stats.retries += 1;
                    backoff_sleep(
                        self.config.retry_backoff_ms,
                        attempt,
                        self.seq ^ ((i as u64) << 48),
                    );
                }
                Err(e) => {
                    let wedged = matches!(e, StoreError::Wedged | StoreError::TornWrite { .. });
                    self.replicas[i].health = if wedged {
                        ReplicaHealth::Wedged
                    } else {
                        ReplicaHealth::Lagging
                    };
                    if wedged {
                        self.replicas[i].wal = None;
                    }
                    self.replicas[i].lag_bytes += frame.len() as u64;
                    return false;
                }
            }
        }
    }

    /// Catch-up repair under exponential skip backoff, run at the top of
    /// every apply: each non-healthy replica is re-shipped the current
    /// generation's files from a healthy peer (or reseeded from memory at
    /// a fresh generation when no healthy peer remains).
    fn opportunistic_repair(&mut self, token: &CancelToken) {
        for i in 0..self.replicas.len() {
            if self.replicas[i].health == ReplicaHealth::Healthy {
                continue;
            }
            if self.replicas[i].repair_skip > 0 {
                self.replicas[i].repair_skip -= 1;
                continue;
            }
            if self.repair_replica(i, token).is_err() {
                let attempts = self.replicas[i].repair_attempts.saturating_add(1);
                self.replicas[i].repair_attempts = attempts;
                self.replicas[i].repair_skip = 1u64 << attempts.min(10);
            }
        }
    }

    /// Repairs every non-healthy replica now (no skip backoff), returning
    /// how many came back. The operational "re-admit the node" hook — the
    /// chaos harness calls this after resurrecting a killed replica.
    pub fn repair_governed(&mut self, token: &CancelToken) -> usize {
        let mut recovered = 0;
        for i in 0..self.replicas.len() {
            if self.replicas[i].health == ReplicaHealth::Healthy {
                continue;
            }
            if self.repair_replica(i, token).is_ok() {
                recovered += 1;
            }
        }
        recovered
    }

    /// [`ReplicatedKb::repair_governed`] with a fresh token.
    pub fn repair(&mut self) -> usize {
        self.repair_governed(&CancelToken::new())
    }

    /// Re-ships the current generation to replica `i` byte-for-byte from
    /// the first healthy peer; with no healthy peer left, reseeds the
    /// replica from the in-memory state at a fresh generation (memory is
    /// authoritative: it equals the last quorum-acknowledged state).
    fn repair_replica(&mut self, i: usize, token: &CancelToken) -> Result<(), StoreError> {
        let source = self
            .replicas
            .iter()
            .position(|r| r.health == ReplicaHealth::Healthy);
        let (generation, wal_len) = match source {
            Some(j) => {
                let src_dir = self.replicas[j].dir.clone();
                let wal_len = self.replicas[j].wal.as_ref().map_or(0, SegmentWriter::len);
                let dst_dir = self.replicas[i].dir.clone();
                copy_store_files(&src_dir, &dst_dir, self.generation, wal_len, token)?;
                (self.generation, wal_len)
            }
            None => {
                let next = self.generation + 1;
                let snap = encode_snapshot(
                    self.sigma_fp,
                    self.seq,
                    &self.base,
                    &self.chased,
                    &self.nulls,
                );
                let dst_dir = self.replicas[i].dir.clone();
                std::fs::create_dir_all(&dst_dir).map_err(|e| io_err("create-dir", &dst_dir, e))?;
                write_atomic(&dst_dir, &snapshot_name(next), &snap, token)?;
                write_atomic(&dst_dir, MARKER_NAME, b"tgdkit-store-v1\n", token)?;
                truncate_file(&dst_dir.join(wal_name(next)), 0)?;
                remove_stale_files(&dst_dir, next)?;
                self.generation = next;
                (next, 0)
            }
        };
        let wal_path = self.replicas[i].dir.join(wal_name(generation));
        let wal = SegmentWriter::open_append(&wal_path, wal_len)?;
        let r = &mut self.replicas[i];
        r.wal = Some(wal);
        r.health = ReplicaHealth::Healthy;
        r.lag_bytes = 0;
        r.repair_attempts = 0;
        r.repair_skip = 0;
        self.stats.repairs += 1;
        Ok(())
    }

    /// Folds the WAL into a fresh snapshot generation on every healthy
    /// replica. A replica whose compaction fails is demoted to `Lagging`
    /// (its previous generation is still a complete acknowledged state);
    /// the generation advances as long as at least one replica compacted.
    pub fn compact_governed(&mut self, token: &CancelToken) -> Result<(), StoreError> {
        let next = self.generation + 1;
        let snap = encode_snapshot(
            self.sigma_fp,
            self.seq,
            &self.base,
            &self.chased,
            &self.nulls,
        );
        let mut successes = 0usize;
        let mut first_err = None;
        for i in 0..self.replicas.len() {
            if self.replicas[i].health != ReplicaHealth::Healthy {
                continue;
            }
            let dir = self.replicas[i].dir.clone();
            let result = write_atomic(&dir, &snapshot_name(next), &snap, token)
                .and_then(|()| truncate_file(&dir.join(wal_name(next)), 0))
                .and_then(|()| SegmentWriter::open_append(&dir.join(wal_name(next)), 0));
            match result {
                Ok(wal) => {
                    self.replicas[i].wal = Some(wal);
                    let _ = std::fs::remove_file(dir.join(snapshot_name(self.generation)));
                    let _ = std::fs::remove_file(dir.join(wal_name(self.generation)));
                    successes += 1;
                }
                Err(e) => {
                    self.replicas[i].health = ReplicaHealth::Lagging;
                    self.replicas[i].wal = None;
                    first_err.get_or_insert(e);
                }
            }
        }
        if successes == 0 {
            return Err(first_err.unwrap_or(StoreError::QuorumLost {
                healthy: 0,
                quorum: self.quorum,
            }));
        }
        self.generation = next;
        Ok(())
    }

    /// Marks replica `i` dead (handle dropped, health `Wedged`) — the
    /// in-process stand-in for SIGKILLing a replica node. Acknowledged
    /// data is untouched on its disk. The replica stays out for at least
    /// [`KILL_REPAIR_SKIP`] applies (opportunistic repair honors the skip
    /// backoff — a killed node is not back on the next write);
    /// [`ReplicatedKb::repair`] re-admits it immediately.
    pub fn kill_replica(&mut self, i: usize) {
        if let Some(r) = self.replicas.get_mut(i) {
            r.health = ReplicaHealth::Wedged;
            r.wal = None;
            r.repair_skip = r.repair_skip.max(KILL_REPAIR_SKIP);
        }
    }

    /// Re-fsyncs every healthy replica's WAL.
    pub fn flush_governed(&mut self, token: &CancelToken) -> Result<(), StoreError> {
        for r in &mut self.replicas {
            if let Some(wal) = r.wal.as_mut() {
                wal.sync(token)?;
            }
        }
        Ok(())
    }

    /// [`ReplicatedKb::flush_governed`] with a fresh token.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.flush_governed(&CancelToken::new())
    }

    /// Replicas currently healthy.
    pub fn healthy_count(&self) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.health == ReplicaHealth::Healthy)
            .count()
    }

    /// `true` when the store is below its write quorum (applies fail
    /// with [`StoreError::QuorumLost`]; reads still work).
    pub fn read_only(&self) -> bool {
        self.healthy_count() < self.quorum
    }

    /// Health of replica `i`.
    pub fn replica_health(&self, i: usize) -> Option<ReplicaHealth> {
        self.replicas.get(i).map(|r| r.health)
    }

    /// The replica directories, in index order.
    pub fn replica_dirs(&self) -> Vec<PathBuf> {
        self.replicas.iter().map(|r| r.dir.clone()).collect()
    }

    /// The root directory holding the replica directories.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The configured write quorum.
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// Counters for this handle; `lag_bytes` is the live backlog.
    pub fn stats(&self) -> ReplStats {
        ReplStats {
            lag_bytes: self.replicas.iter().map(|r| r.lag_bytes).sum(),
            ..self.stats
        }
    }

    /// Fingerprint of the tgd set the store is bound to.
    pub fn sigma_fingerprint(&self) -> u64 {
        self.sigma_fp
    }

    /// The chased fixpoint (base ∪ everything derivable from it).
    pub fn chased(&self) -> &Instance {
        &self.chased
    }

    /// The base instance (acknowledged inserts minus retracts).
    pub fn base(&self) -> &Instance {
        &self.base
    }

    /// Labeled nulls of the chased fixpoint.
    pub fn nulls(&self) -> &BTreeSet<Elem> {
        &self.nulls
    }

    /// `true` iff the exact tuple is in the chased fixpoint.
    pub fn holds(&self, pred: PredId, args: &[Elem]) -> bool {
        self.chased.contains_fact(pred, args)
    }

    /// The schema the store is bound to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Batches acknowledged over the store's lifetime.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Current snapshot generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Bytes acknowledged in a healthy replica's WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.replicas
            .iter()
            .find(|r| r.health == ReplicaHealth::Healthy)
            .and_then(|r| r.wal.as_ref())
            .map_or(0, SegmentWriter::len)
    }
}

/// Probes a replica directory for its verified acknowledged prefix
/// without folding or chasing anything: newest verifying snapshot, then
/// the WAL prefix whose frames checksum and sequence-chain.
fn probe_dir(
    dir: &Path,
    schema: &Schema,
    sigma_fp: u64,
    token: &CancelToken,
) -> Result<Probe, StoreError> {
    if !dir.is_dir() {
        return Ok(Probe::Fresh);
    }
    let mut generations = discover_generations(dir)?;
    generations.sort_unstable_by(|a, b| b.cmp(a));
    if generations.is_empty() {
        let orphaned = dir.join(MARKER_NAME).exists() || has_wal_files(dir)?;
        return Ok(if orphaned {
            Probe::Damaged
        } else {
            Probe::Fresh
        });
    }
    for generation in generations {
        let path = dir.join(snapshot_name(generation));
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => continue,
        };
        let scan = scan_frames(&bytes, KIND_SNAPSHOT, token);
        let snap = match (scan.frames.as_slice(), scan.damage) {
            ([(_, payload)], None) => match decode_snapshot(payload, schema) {
                Ok(snap) => snap,
                Err(_) => continue,
            },
            _ => continue,
        };
        if snap.sigma_fp != sigma_fp {
            return Err(StoreError::ContextMismatch("tgd set"));
        }
        let wal_path = dir.join(wal_name(generation));
        let wal_bytes = match std::fs::read(&wal_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err("read", &wal_path, e)),
        };
        let wscan = scan_frames(&wal_bytes, KIND_WAL_BATCH, token);
        let mut seq = snap.seq;
        for (_, payload) in wscan.frames {
            match WalBatch::decode_payload(payload, schema) {
                Ok(batch) if batch.seq == seq => seq += 1,
                _ => break,
            }
        }
        return Ok(Probe::Verified { generation, seq });
    }
    Ok(Probe::Damaged)
}

/// Copies generation `generation` (snapshot, marker, and the first
/// `wal_len` WAL bytes) from `src` to `dst` atomically, then removes
/// every other file in `dst` so the directories are byte-identical.
fn copy_store_files(
    src: &Path,
    dst: &Path,
    generation: u64,
    wal_len: u64,
    token: &CancelToken,
) -> Result<(), StoreError> {
    std::fs::create_dir_all(dst).map_err(|e| io_err("create-dir", dst, e))?;
    let snap_path = src.join(snapshot_name(generation));
    let snap = std::fs::read(&snap_path).map_err(|e| io_err("read", &snap_path, e))?;
    write_atomic(dst, &snapshot_name(generation), &snap, token)?;
    write_atomic(dst, MARKER_NAME, b"tgdkit-store-v1\n", token)?;
    let wal_path = src.join(wal_name(generation));
    let wal = match std::fs::read(&wal_path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err("read", &wal_path, e)),
    };
    let take = (wal_len as usize).min(wal.len());
    write_atomic(dst, &wal_name(generation), &wal[..take], token)?;
    remove_stale_files(dst, generation)
}

/// Trims a replica directory that already holds the right verified prefix:
/// truncate its WAL at `wal_len` (dropping any torn tail) and remove
/// every file that is not the current generation's pair or the marker.
fn trim_to_generation(
    dir: &Path,
    generation: u64,
    wal_len: u64,
    token: &CancelToken,
) -> Result<(), StoreError> {
    truncate_file(&dir.join(wal_name(generation)), wal_len)?;
    if !dir.join(MARKER_NAME).exists() {
        write_atomic(dir, MARKER_NAME, b"tgdkit-store-v1\n", token)?;
    }
    remove_stale_files(dir, generation)
}

/// Removes every file in `dir` except the kept generation's snapshot/WAL
/// pair and the marker (stale generations, temp files, forged frames).
fn remove_stale_files(dir: &Path, keep: u64) -> Result<(), StoreError> {
    let keep_snap = snapshot_name(keep);
    let keep_wal = wal_name(keep);
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("read-dir", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read-dir", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name == keep_snap || name == keep_wal || name == MARKER_NAME {
            continue;
        }
        let path = entry.path();
        std::fs::remove_file(&path).map_err(|e| io_err("remove", &path, e))?;
    }
    Ok(())
}

/// A tenant's knowledge base behind one dispatch point: the flat
/// single-directory [`DurableKb`] when `replicas <= 1` (the pre-existing
/// layout, untouched), or a [`ReplicatedKb`] root when the server is run
/// with `--replicas N` for N ≥ 2.
#[derive(Debug)]
pub enum TenantKb {
    /// One directory, one timeline (no replication).
    Single(DurableKb),
    /// N replica directories under the tenant root, quorum-acknowledged.
    Replicated(ReplicatedKb),
}

impl TenantKb {
    /// Opens the right store shape for `config.replicas`.
    pub fn open(
        dir: &Path,
        set: &TgdSet,
        config: KbConfig,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        if config.replicas > 1 {
            let (kb, report) = ReplicatedKb::open(dir, set, config)?;
            Ok((TenantKb::Replicated(kb), report.report))
        } else {
            let (kb, report) = DurableKb::open(dir, set, config)?;
            Ok((TenantKb::Single(kb), report))
        }
    }

    /// Applies one batch (see [`DurableKb::apply`] /
    /// [`ReplicatedKb::apply`]).
    pub fn apply(
        &mut self,
        inserts: &[Fact],
        retracts: &[Fact],
    ) -> Result<ApplyReport, StoreError> {
        match self {
            TenantKb::Single(kb) => kb.apply(inserts, retracts),
            TenantKb::Replicated(kb) => kb.apply(inserts, retracts),
        }
    }

    /// Re-fsyncs the WAL(s).
    pub fn flush(&mut self) -> Result<(), StoreError> {
        match self {
            TenantKb::Single(kb) => kb.flush(),
            TenantKb::Replicated(kb) => kb.flush(),
        }
    }

    /// Fingerprint of the tgd set the store is bound to.
    pub fn sigma_fingerprint(&self) -> u64 {
        match self {
            TenantKb::Single(kb) => kb.sigma_fingerprint(),
            TenantKb::Replicated(kb) => kb.sigma_fingerprint(),
        }
    }

    /// The schema the store is bound to.
    pub fn schema(&self) -> &Schema {
        match self {
            TenantKb::Single(kb) => kb.schema(),
            TenantKb::Replicated(kb) => kb.schema(),
        }
    }

    /// The chased fixpoint.
    pub fn chased(&self) -> &Instance {
        match self {
            TenantKb::Single(kb) => kb.chased(),
            TenantKb::Replicated(kb) => kb.chased(),
        }
    }

    /// `true` iff the exact tuple is in the chased fixpoint.
    pub fn holds(&self, pred: PredId, args: &[Elem]) -> bool {
        match self {
            TenantKb::Single(kb) => kb.holds(pred, args),
            TenantKb::Replicated(kb) => kb.holds(pred, args),
        }
    }

    /// Batches acknowledged over the store's lifetime.
    pub fn seq(&self) -> u64 {
        match self {
            TenantKb::Single(kb) => kb.seq(),
            TenantKb::Replicated(kb) => kb.seq(),
        }
    }

    /// Current snapshot generation.
    pub fn generation(&self) -> u64 {
        match self {
            TenantKb::Single(kb) => kb.generation(),
            TenantKb::Replicated(kb) => kb.generation(),
        }
    }

    /// Replication counters, when this tenant's store is replicated.
    pub fn repl_stats(&self) -> Option<ReplStats> {
        match self {
            TenantKb::Single(_) => None,
            TenantKb::Replicated(kb) => Some(kb.stats()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgdkit_chase::FaultPlan;
    use tgdkit_logic::parse_tgds;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tgdkit-store-repl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_set() -> TgdSet {
        let mut schema = Schema::default();
        let tgds = parse_tgds(
            &mut schema,
            "E(x,y), E(y,z) -> E(x,z). P(x) -> exists w : E(x,w).",
        )
        .unwrap();
        TgdSet::new(schema, tgds).unwrap()
    }

    fn e_fact(set: &TgdSet, x: u32, y: u32) -> Fact {
        Fact::new(set.schema().pred_id("E").unwrap(), vec![Elem(x), Elem(y)])
    }

    fn repl_config(replicas: usize, quorum: usize) -> KbConfig {
        KbConfig {
            replicas,
            quorum,
            retry_backoff_ms: 0,
            compact_wal_bytes: u64::MAX,
            ..KbConfig::default()
        }
    }

    fn dir_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort();
        files
    }

    #[test]
    fn replicas_are_byte_identical_after_applies() {
        let root = tmpdir("identical");
        let set = test_set();
        let (mut kb, report) = ReplicatedKb::open(&root, &set, repl_config(3, 2)).unwrap();
        assert_eq!(report.elected, 0);
        assert!(!report.failover);
        kb.apply(&[e_fact(&set, 0, 1), e_fact(&set, 1, 2)], &[])
            .unwrap();
        kb.apply(&[e_fact(&set, 2, 3)], &[]).unwrap();
        assert_eq!(kb.stats().acks, 2);
        assert_eq!(kb.healthy_count(), 3);
        let dirs = kb.replica_dirs();
        let first = dir_files(&dirs[0]);
        for dir in &dirs[1..] {
            assert_eq!(dir_files(dir), first, "replicas diverged");
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn killing_below_quorum_keeps_writes_flowing() {
        let root = tmpdir("kill-one");
        let set = test_set();
        let (mut kb, _) = ReplicatedKb::open(&root, &set, repl_config(3, 2)).unwrap();
        kb.apply(&[e_fact(&set, 0, 1)], &[]).unwrap();
        kb.kill_replica(2);
        assert_eq!(kb.replica_health(2), Some(ReplicaHealth::Wedged));
        // Quorum (2 of 3) still holds: the next applies are acknowledged.
        kb.apply(&[e_fact(&set, 1, 2)], &[]).unwrap();
        assert!(kb.stats().quorum_waits >= 1);
        assert!(kb.stats().lag_bytes > 0);
        // Repair re-admits the replica to byte-identity.
        assert!(kb.repair() >= 1);
        assert_eq!(kb.replica_health(2), Some(ReplicaHealth::Healthy));
        assert_eq!(kb.stats().lag_bytes, 0);
        let dirs = kb.replica_dirs();
        assert_eq!(dir_files(&dirs[2]), dir_files(&dirs[0]));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn below_quorum_degrades_to_typed_read_only() {
        let root = tmpdir("quorum-lost");
        let set = test_set();
        let (mut kb, _) = ReplicatedKb::open(&root, &set, repl_config(3, 2)).unwrap();
        kb.apply(&[e_fact(&set, 0, 1)], &[]).unwrap();
        let acked = kb.chased().clone();
        // Kill every replica and pin each disk dead — replace the replica
        // directory with a plain file so even reseed repair cannot
        // recreate it.
        let dirs = kb.replica_dirs();
        for (i, dir) in dirs.iter().enumerate() {
            kb.kill_replica(i);
            std::fs::remove_dir_all(dir).unwrap();
            std::fs::write(dir, b"dead disk").unwrap();
        }
        for k in 0..4u32 {
            let err = kb.apply(&[e_fact(&set, k + 1, k + 2)], &[]).unwrap_err();
            assert!(matches!(err, StoreError::QuorumLost { .. }), "{err}");
        }
        assert!(kb.read_only());
        assert!(kb.stats().quorum_losses >= 4);
        // Reads keep serving the acknowledged closure.
        assert_eq!(kb.chased(), &acked);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn failover_elects_longest_prefix_after_primary_loss() {
        let root = tmpdir("failover");
        let set = test_set();
        let (mut kb, _) = ReplicatedKb::open(&root, &set, repl_config(3, 2)).unwrap();
        kb.apply(&[e_fact(&set, 0, 1), e_fact(&set, 1, 2)], &[])
            .unwrap();
        let state = kb.chased().clone();
        let seq = kb.seq();
        let dirs = kb.replica_dirs();
        drop(kb);
        // The primary's disk dies entirely.
        std::fs::remove_dir_all(&dirs[0]).unwrap();
        let (kb, report) = ReplicatedKb::open(&root, &set, repl_config(3, 2)).unwrap();
        assert!(report.failover);
        assert_ne!(report.elected, 0);
        assert!(report.repaired >= 1, "replica-00 re-shipped");
        assert_eq!(kb.seq(), seq);
        assert_eq!(kb.chased(), &state, "failover serves the same closure");
        assert_eq!(kb.stats().failovers, 1);
        // The reborn replica-00 is byte-identical to the elected one.
        assert_eq!(dir_files(&dirs[0]), dir_files(&dirs[report.elected]));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_replica_faults_never_lose_acknowledged_facts() {
        let root = tmpdir("faults");
        let set = test_set();
        let plan = FaultPlan::only(7, FaultSite::ReplicaAppendFail, 3);
        let token = CancelToken::with_faults(plan);
        let (mut kb, _) = ReplicatedKb::open(&root, &set, repl_config(3, 2)).unwrap();
        let mut acked = 0u64;
        for k in 0..12u32 {
            if kb
                .apply_governed(&[e_fact(&set, k, k + 1)], &[], &token)
                .is_ok()
            {
                acked += 1;
            }
        }
        assert_eq!(kb.seq(), acked);
        assert!(kb.stats().retries > 0, "schedule exercised the retry path");
        let state = kb.chased().clone();
        drop(kb);
        let (kb, _) = ReplicatedKb::open(&root, &set, repl_config(3, 2)).unwrap();
        assert_eq!(kb.seq(), acked, "every acknowledged batch recovered");
        assert_eq!(kb.chased(), &state);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tenant_kb_dispatches_by_replica_count() {
        let set = test_set();
        let flat = tmpdir("tenant-flat");
        let (kb, _) = TenantKb::open(&flat, &set, repl_config(1, 1)).unwrap();
        assert!(matches!(kb, TenantKb::Single(_)));
        assert!(kb.repl_stats().is_none());
        assert!(flat.join(snapshot_name(0)).exists(), "flat layout kept");
        let root = tmpdir("tenant-repl");
        let (mut kb, _) = TenantKb::open(&root, &set, repl_config(2, 2)).unwrap();
        assert!(kb.repl_stats().is_some());
        kb.apply(&[e_fact(&set, 0, 1)], &[]).unwrap();
        assert_eq!(kb.repl_stats().unwrap().acks, 1);
        assert!(root.join("replica-01").join(snapshot_name(0)).exists());
        let _ = std::fs::remove_dir_all(&flat);
        let _ = std::fs::remove_dir_all(&root);
    }
}
