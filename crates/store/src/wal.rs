//! The WAL batch: one acknowledged unit of knowledge-base change, encoded
//! as a sealed [`KIND_WAL_BATCH`](crate::KIND_WAL_BATCH) frame.

use crate::segment::KIND_WAL_BATCH;
use tgdkit_chase::checkpoint::{
    read_facts, seal, write_facts, CheckpointError, CheckpointReader, CheckpointWriter,
};
use tgdkit_instance::Fact;
use tgdkit_logic::Schema;

/// One batch of fact insertions and retractions, stamped with the
/// knowledge base's sequence number at append time. Recovery replays
/// batches strictly in sequence; a frame whose `seq` does not continue
/// the snapshot's is treated as damage and truncated.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WalBatch {
    /// Sequence number: the number of batches acknowledged before this
    /// one since the store was created (compaction does not reset it).
    pub seq: u64,
    /// Facts added to the base instance.
    pub inserts: Vec<Fact>,
    /// Facts removed from the base instance (retracting a fact that is
    /// merely *derived* leaves the base unchanged).
    pub retracts: Vec<Fact>,
}

impl WalBatch {
    /// Encodes the batch as one sealed frame ready to append.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = CheckpointWriter::new();
        w.u64(self.seq);
        write_facts(&mut w, &self.inserts);
        write_facts(&mut w, &self.retracts);
        seal(KIND_WAL_BATCH, &w.into_payload())
    }

    /// Decodes a verified frame payload (as handed out by
    /// [`scan_frames`](crate::scan_frames)), validating every predicate
    /// and arity against `schema`.
    pub fn decode_payload(payload: &[u8], schema: &Schema) -> Result<Self, CheckpointError> {
        let mut r = CheckpointReader::new(payload);
        let seq = r.u64()?;
        let inserts = read_facts(&mut r, schema)?;
        let retracts = read_facts(&mut r, schema)?;
        if !r.is_exhausted() {
            return Err(CheckpointError::Malformed("trailing WAL batch bytes"));
        }
        Ok(WalBatch {
            seq,
            inserts,
            retracts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgdkit_chase::checkpoint::open;
    use tgdkit_instance::Elem;
    use tgdkit_logic::parse_tgds;

    #[test]
    fn wal_batch_round_trips() {
        let mut s = Schema::default();
        let _ = parse_tgds(&mut s, "E(x,y) -> P(x).").unwrap();
        let e = s.pred_id("E").unwrap();
        let p = s.pred_id("P").unwrap();
        let batch = WalBatch {
            seq: 42,
            inserts: vec![
                Fact::new(e, vec![Elem(0), Elem(1)]),
                Fact::new(p, vec![Elem(2)]),
            ],
            retracts: vec![Fact::new(e, vec![Elem(3), Elem(3)])],
        };
        let frame = batch.encode();
        let payload = open(&frame, KIND_WAL_BATCH).unwrap();
        let decoded = WalBatch::decode_payload(payload, &s).unwrap();
        assert_eq!(decoded, batch);
    }

    #[test]
    fn wal_batch_rejects_bad_predicate() {
        let mut s = Schema::default();
        let _ = parse_tgds(&mut s, "E(x,y) -> P(x).").unwrap();
        let e = s.pred_id("E").unwrap();
        let batch = WalBatch {
            seq: 0,
            inserts: vec![Fact::new(e, vec![Elem(0), Elem(1)])],
            retracts: Vec::new(),
        };
        let frame = batch.encode();
        let payload = open(&frame, KIND_WAL_BATCH).unwrap();
        // Decode against a schema missing the predicates: typed error.
        let empty = Schema::default();
        assert!(WalBatch::decode_payload(payload, &empty).is_err());
    }
}
