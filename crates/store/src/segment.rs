//! Segment-file primitives: sealed-frame scanning with
//! truncate-at-first-damage semantics, fsynced appends with injectable
//! I/O faults, and atomic whole-file replacement for snapshots.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use tgdkit_chase::checkpoint::{open_at, CheckpointError};
use tgdkit_chase::{CancelToken, ChaseOutcome, FaultSite};

/// Sealed-frame kind of a knowledge-base snapshot (store kind range
/// `0x30..=0x3F`, disjoint from checkpoint kinds 1–3 and wire kinds
/// `0x10..=0x2F`).
pub const KIND_SNAPSHOT: u8 = 0x30;
/// Sealed-frame kind of one WAL batch (insertions + retractions).
pub const KIND_WAL_BATCH: u8 = 0x31;

/// Frame header size (magic + version + kind + payload length); the
/// checksum adds 8 trailing bytes, so the smallest whole frame is
/// `FRAME_HEADER + 8` bytes.
pub const FRAME_HEADER: usize = 15;

/// Why a store operation failed. Every failure is typed — the store never
/// panics on damaged input — and `PartialEq` so tests can pin exact
/// failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An OS-level I/O failure, tagged with the operation and path.
    Io {
        /// What the store was doing (`"create"`, `"append"`, `"rename"`, …).
        op: &'static str,
        /// The file or directory involved.
        path: String,
        /// The OS error kind.
        kind: std::io::ErrorKind,
    },
    /// A frame failed to verify or decode (checksum, truncation, bad
    /// structure) — carries the typed checkpoint error with its offset.
    Frame(CheckpointError),
    /// The store on disk was written against a different tgd set or schema
    /// than the one it is being opened with.
    ContextMismatch(&'static str),
    /// A WAL append wrote only a prefix of its frame (injected
    /// [`FaultSite::WalTornWrite`] or a short write): the batch is NOT
    /// durable, the file tail is garbage, and the handle is wedged until
    /// reopened — recovery will truncate at `offset`.
    TornWrite {
        /// File offset of the torn frame's first byte.
        offset: u64,
    },
    /// An fsync failed (injected [`FaultSite::FsyncFail`] or real): the
    /// write was rolled back and the batch is not acknowledged.
    FsyncFailed {
        /// The file whose sync failed.
        path: String,
    },
    /// The handle saw a torn write earlier and refuses further appends;
    /// reopen the store to recover.
    Wedged,
    /// A replicated append could not reach its write quorum: fewer than
    /// `quorum` replicas are healthy, so the store degrades to read-only
    /// instead of acknowledging a write that a single further failure
    /// could lose. Reads keep serving the in-memory closure.
    QuorumLost {
        /// Replicas currently healthy (able to take acknowledged appends).
        healthy: usize,
        /// The configured write quorum.
        quorum: usize,
    },
    /// A fold or re-chase did not reach a fixpoint under the configured
    /// budget, so the batch cannot be committed.
    ChaseDidNotTerminate(ChaseOutcome),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, kind } => {
                write!(f, "store i/o failure during {op} on {path}: {kind}")
            }
            StoreError::Frame(e) => write!(f, "store frame invalid: {e}"),
            StoreError::ContextMismatch(what) => {
                write!(f, "store does not match the open inputs: {what}")
            }
            StoreError::TornWrite { offset } => {
                write!(
                    f,
                    "torn WAL write at byte offset {offset}: batch not durable"
                )
            }
            StoreError::FsyncFailed { path } => {
                write!(
                    f,
                    "fsync failed on {path}: write rolled back, batch not durable"
                )
            }
            StoreError::Wedged => {
                write!(
                    f,
                    "store handle wedged by an earlier torn write; reopen to recover"
                )
            }
            StoreError::QuorumLost { healthy, quorum } => {
                write!(
                    f,
                    "write quorum lost: {healthy} healthy replica(s) below quorum {quorum}; \
                     store is read-only until repair"
                )
            }
            StoreError::ChaseDidNotTerminate(outcome) => {
                write!(
                    f,
                    "fold did not reach a fixpoint under the budget ({outcome:?})"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CheckpointError> for StoreError {
    fn from(e: CheckpointError) -> Self {
        StoreError::Frame(e)
    }
}

/// Sleeps for a deterministically jittered backoff: `base_ms` doubled per
/// attempt, scaled by a hash of `(salt, attempt)` into 50–150%. `base_ms`
/// 0 disables sleeping entirely (tests and tight benchmark loops).
pub(crate) fn backoff_sleep(base_ms: u64, attempt: u32, salt: u64) {
    if base_ms == 0 {
        return;
    }
    let ceiling = base_ms.saturating_mul(1u64 << attempt.min(6));
    // SplitMix64 finalizer over (salt, attempt): cheap, seeded jitter with
    // no RNG object to thread.
    let mut x = salt ^ ((attempt as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let jittered = ceiling / 2 + x % ceiling.max(1);
    std::thread::sleep(std::time::Duration::from_millis(jittered));
}

pub(crate) fn io_err(op: &'static str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io {
        op,
        path: path.display().to_string(),
        kind: e.kind(),
    }
}

/// The result of scanning a segment file for sealed frames.
#[derive(Debug)]
pub struct FrameScan<'a> {
    /// Verified frames in file order: `(frame offset, payload slice)`.
    pub frames: Vec<(u64, &'a [u8])>,
    /// Length of the valid prefix — the file offset at which the first
    /// damaged or torn frame starts (equals the file length when the whole
    /// file verified).
    pub valid_len: u64,
    /// Why the scan stopped early, if it did: a checksum mismatch at the
    /// reported offset, or a torn tail ([`CheckpointError::Truncated`]).
    pub damage: Option<CheckpointError>,
}

/// Scans `bytes` as a sequence of sealed frames of `expected_kind`,
/// verifying every checksum, and stops at the first frame that does not
/// verify — torn tail, flipped byte, wrong kind, or an injected
/// [`FaultSite::SegmentCorrupt`] — reporting the valid prefix length so
/// the caller can truncate the file there. Never panics and never
/// allocates from unverified lengths (payloads are borrowed slices).
pub fn scan_frames<'a>(bytes: &'a [u8], expected_kind: u8, token: &CancelToken) -> FrameScan<'a> {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    let mut damage = None;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < FRAME_HEADER + 8 {
            damage = Some(CheckpointError::Truncated);
            break;
        }
        // The declared length is unverified until the checksum passes; it
        // is only used to bound the candidate slice, and both failure modes
        // (points past EOF → torn tail; wrong but in-bounds → checksum
        // mismatch over the wrong span) truncate here.
        let len = u64::from_le_bytes(rest[7..15].try_into().expect("8-byte slice"));
        let total = (FRAME_HEADER as u64).saturating_add(len).saturating_add(8);
        if total > rest.len() as u64 {
            damage = Some(CheckpointError::Truncated);
            break;
        }
        let frame = &rest[..total as usize];
        if token.fault(FaultSite::SegmentCorrupt) {
            damage = Some(CheckpointError::ChecksumMismatch {
                offset: pos as u64,
                kind: frame[6],
            });
            break;
        }
        match open_at(frame, expected_kind, pos as u64) {
            Ok(payload) => {
                frames.push((pos as u64, payload));
                pos += total as usize;
            }
            Err(e) => {
                damage = Some(e);
                break;
            }
        }
    }
    FrameScan {
        frames,
        valid_len: pos as u64,
        damage,
    }
}

/// Fsyncs `file`, consulting [`FaultSite::FsyncFail`] first so seeded
/// schedules can exercise the not-durable path.
fn sync_file(file: &File, path: &Path, token: &CancelToken) -> Result<(), StoreError> {
    if token.fault(FaultSite::FsyncFail) {
        return Err(StoreError::FsyncFailed {
            path: path.display().to_string(),
        });
    }
    file.sync_all().map_err(|e| io_err("fsync", path, e))
}

/// Best-effort directory fsync after a rename/create, so the new directory
/// entry itself is durable. Failures are swallowed: the data file is
/// already synced, and a lost dirent reproduces an older-but-consistent
/// state that recovery handles.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Writes `bytes` to `dir/name` atomically: temp file → write → fsync →
/// rename → directory fsync. On any failure the temp file is removed and
/// the previous `dir/name` (if any) is untouched.
pub fn write_atomic(
    dir: &Path,
    name: &str,
    bytes: &[u8],
    token: &CancelToken,
) -> Result<(), StoreError> {
    let tmp = dir.join(format!("{name}.tmp"));
    let target = dir.join(name);
    let result = (|| {
        let mut f = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        f.write_all(bytes).map_err(|e| io_err("write", &tmp, e))?;
        sync_file(&f, &tmp, token)?;
        drop(f);
        std::fs::rename(&tmp, &target).map_err(|e| io_err("rename", &target, e))?;
        sync_dir(dir);
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// An append-only handle on a WAL segment file. Appends are all-or-nothing
/// from the caller's view: a frame is either fully written **and** fsynced
/// (acknowledged), or the file is rolled back to its pre-append length —
/// except for a torn write, which leaves the torn bytes on disk (as a
/// crash would) and wedges the handle.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    path: PathBuf,
    len: u64,
    wedged: bool,
}

impl SegmentWriter {
    /// Opens `path` for appending, creating it if missing, positioned at
    /// `len` (the verified prefix length — the caller truncates damage
    /// before opening).
    pub fn open_append(path: &Path, len: u64) -> Result<Self, StoreError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err("open", path, e))?;
        Ok(SegmentWriter {
            file,
            path: path.to_path_buf(),
            len,
            wedged: false,
        })
    }

    /// Bytes currently acknowledged in the file.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the file holds no acknowledged frames.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `true` after a torn write: the tail is garbage and only a reopen
    /// (which truncates it) can continue.
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    /// Re-fsyncs the file (appends already sync per frame), consulting
    /// [`FaultSite::FsyncFail`].
    pub fn sync(&mut self, token: &CancelToken) -> Result<(), StoreError> {
        if self.wedged {
            return Err(StoreError::Wedged);
        }
        sync_file(&self.file, &self.path, token)
    }

    /// Rolls the file back to `len` bytes (fsynced), undoing appends that
    /// were durable on *this* replica but whose batch failed to reach its
    /// write quorum — the un-acknowledged suffix must not survive into
    /// recovery, or a failover could resurrect a batch the client was told
    /// failed. Also un-wedges a torn handle (the torn tail is file bytes
    /// past the acknowledged `len`, so truncation removes exactly it).
    /// No-op when the file is already at (or below) `len` and not wedged.
    pub fn truncate_to(&mut self, len: u64, token: &CancelToken) -> Result<(), StoreError> {
        if self.len <= len && !self.wedged {
            return Ok(());
        }
        self.file
            .set_len(len)
            .map_err(|e| io_err("truncate", &self.path, e))?;
        sync_file(&self.file, &self.path, token)?;
        self.len = len;
        self.wedged = false;
        Ok(())
    }

    /// Appends one sealed frame and fsyncs it, returning the frame's file
    /// offset. Consults [`FaultSite::WalTornWrite`] (write a prefix, leave
    /// it on disk, wedge the handle) and [`FaultSite::FsyncFail`] (roll
    /// the file back to the pre-append length).
    pub fn append_frame(&mut self, frame: &[u8], token: &CancelToken) -> Result<u64, StoreError> {
        if self.wedged {
            return Err(StoreError::Wedged);
        }
        let offset = self.len;
        if token.fault(FaultSite::WalTornWrite) {
            // Simulate a crash mid-write: half the frame reaches the disk
            // and stays there. The handle is wedged — appending past
            // garbage would bury valid-looking frames behind an invalid
            // one, which recovery (correctly) drops.
            let torn = &frame[..frame.len() / 2];
            let _ = self.file.write_all(torn);
            let _ = self.file.sync_all();
            self.wedged = true;
            return Err(StoreError::TornWrite { offset });
        }
        if let Err(e) = self.file.write_all(frame) {
            let _ = self.file.set_len(offset);
            return Err(io_err("append", &self.path, e));
        }
        if token.fault(FaultSite::FsyncFail) {
            // The bytes may or may not have reached the platter; roll the
            // file back so durable state equals acknowledged state.
            let _ = self.file.set_len(offset);
            return Err(StoreError::FsyncFailed {
                path: self.path.display().to_string(),
            });
        }
        if let Err(e) = self.file.sync_all() {
            let _ = self.file.set_len(offset);
            return Err(io_err("fsync", &self.path, e));
        }
        self.len = offset + frame.len() as u64;
        Ok(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgdkit_chase::checkpoint::seal;
    use tgdkit_chase::FaultPlan;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tgdkit-store-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn scan_accepts_clean_frames_and_reports_full_length() {
        let mut bytes = Vec::new();
        for payload in [&b"alpha"[..], &b"beta"[..], &b""[..]] {
            bytes.extend_from_slice(&seal(KIND_WAL_BATCH, payload));
        }
        let scan = scan_frames(&bytes, KIND_WAL_BATCH, &CancelToken::new());
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert!(scan.damage.is_none());
        assert_eq!(scan.frames[0].1, b"alpha");
        assert_eq!(scan.frames[2].1, b"");
    }

    #[test]
    fn scan_truncates_at_torn_tail() {
        let mut bytes = seal(KIND_WAL_BATCH, b"whole");
        let first = bytes.len() as u64;
        let second = seal(KIND_WAL_BATCH, b"torn-away");
        bytes.extend_from_slice(&second[..second.len() - 3]);
        let scan = scan_frames(&bytes, KIND_WAL_BATCH, &CancelToken::new());
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.valid_len, first);
        assert_eq!(scan.damage, Some(CheckpointError::Truncated));
    }

    #[test]
    fn scan_truncates_at_flipped_byte_with_offset() {
        let mut bytes = seal(KIND_WAL_BATCH, b"first");
        let first = bytes.len() as u64;
        bytes.extend_from_slice(&seal(KIND_WAL_BATCH, b"second"));
        let flip = first as usize + FRAME_HEADER + 2;
        bytes[flip] ^= 0x40;
        let scan = scan_frames(&bytes, KIND_WAL_BATCH, &CancelToken::new());
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.valid_len, first);
        match scan.damage {
            Some(CheckpointError::ChecksumMismatch { offset, kind }) => {
                assert_eq!(offset, first);
                assert_eq!(kind, KIND_WAL_BATCH);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn injected_segment_corruption_truncates() {
        let bytes = seal(KIND_WAL_BATCH, b"payload");
        let token = CancelToken::with_faults(FaultPlan::always(FaultSite::SegmentCorrupt));
        let scan = scan_frames(&bytes, KIND_WAL_BATCH, &token);
        assert!(scan.frames.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert!(matches!(
            scan.damage,
            Some(CheckpointError::ChecksumMismatch { offset: 0, .. })
        ));
    }

    #[test]
    fn append_fsync_failure_rolls_the_file_back() {
        let dir = tmpdir("fsync");
        let path = dir.join("wal-test.tgkw");
        let mut w = SegmentWriter::open_append(&path, 0).unwrap();
        let clean = CancelToken::new();
        w.append_frame(&seal(KIND_WAL_BATCH, b"ok"), &clean)
            .unwrap();
        let before = w.len();
        let failing = CancelToken::with_faults(FaultPlan::always(FaultSite::FsyncFail));
        let err = w
            .append_frame(&seal(KIND_WAL_BATCH, b"lost"), &failing)
            .unwrap_err();
        assert!(matches!(err, StoreError::FsyncFailed { .. }));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before);
        assert!(!w.is_wedged(), "fsync failure is retryable");
        w.append_frame(&seal(KIND_WAL_BATCH, b"after"), &clean)
            .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let scan = scan_frames(&bytes, KIND_WAL_BATCH, &clean);
        assert_eq!(
            scan.frames.iter().map(|(_, p)| *p).collect::<Vec<_>>(),
            vec![&b"ok"[..], &b"after"[..]]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_leaves_prefix_and_wedges() {
        let dir = tmpdir("torn");
        let path = dir.join("wal-test.tgkw");
        let mut w = SegmentWriter::open_append(&path, 0).unwrap();
        let clean = CancelToken::new();
        w.append_frame(&seal(KIND_WAL_BATCH, b"kept"), &clean)
            .unwrap();
        let acked = w.len();
        let tearing = CancelToken::with_faults(FaultPlan::always(FaultSite::WalTornWrite));
        let err = w
            .append_frame(&seal(KIND_WAL_BATCH, b"torn-batch"), &tearing)
            .unwrap_err();
        assert_eq!(err, StoreError::TornWrite { offset: acked });
        assert!(w.is_wedged());
        assert_eq!(
            w.append_frame(&seal(KIND_WAL_BATCH, b"no"), &clean)
                .unwrap_err(),
            StoreError::Wedged
        );
        // On disk: the acked frame, then garbage. Recovery keeps the prefix.
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.len() as u64 > acked, "torn bytes are on disk");
        let scan = scan_frames(&bytes, KIND_WAL_BATCH, &clean);
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.valid_len, acked);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_replaces_and_survives_fsync_fault() {
        let dir = tmpdir("atomic");
        let clean = CancelToken::new();
        write_atomic(&dir, "snap.tgks", b"v1", &clean).unwrap();
        assert_eq!(std::fs::read(dir.join("snap.tgks")).unwrap(), b"v1");
        let failing = CancelToken::with_faults(FaultPlan::always(FaultSite::FsyncFail));
        let err = write_atomic(&dir, "snap.tgks", b"v2", &failing).unwrap_err();
        assert!(matches!(err, StoreError::FsyncFailed { .. }));
        // The old file is intact and the temp file is gone.
        assert_eq!(std::fs::read(dir.join("snap.tgks")).unwrap(), b"v1");
        assert!(!dir.join("snap.tgks.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
