//! # tgdkit-store
//!
//! The durability layer: a knowledge base (a chased fixpoint plus its
//! un-chased *base* facts) persisted as append-only, checksummed segment
//! files, updated through a write-ahead log, and recovered
//! crash-consistently on open.
//!
//! ## Layout on disk
//!
//! A store directory holds one *generation* of state (plus, transiently,
//! the previous one during compaction):
//!
//! ```text
//! kb-dir/
//!   snapshot-000042.tgks   one sealed TGCK frame (kind 0x30): sigma
//!                          fingerprint, sequence number, base instance,
//!                          chased instance, labeled nulls
//!   wal-000042.tgkw        zero or more sealed TGCK frames (kind 0x31),
//!                          one per acknowledged batch of insertions and
//!                          retractions, in sequence order
//! ```
//!
//! Both files reuse the checkpoint frame discipline of `tgdkit-chase`
//! (magic · version · kind · length · payload · FNV-1a-64 checksum, with
//! the checksum verified before any header field is trusted); the store
//! claims the kind range `0x30..=0x3F`, disjoint from the checkpoint kinds
//! (1–3) and the wire kinds (`0x10..=0x2F`).
//!
//! ## Crash consistency
//!
//! An update batch is *acknowledged* only after its WAL frame is fully
//! written and fsynced; the in-memory fold commits at the same moment.
//! Recovery ([`DurableKb::open`]) scans the newest valid snapshot, then
//! replays the WAL prefix that verifies, truncating the file at the first
//! torn or corrupt frame — so the durable state is exactly the
//! acknowledged state, and `restart ≡ uninterrupted` (byte-identical
//! instances, identical verdicts). The I/O fault sites `WalTornWrite`,
//! `SegmentCorrupt`, and `FsyncFail` inject exactly these failures under
//! seeded schedules (see `tgdkit_chase::FaultSite`).
//!
//! ## Replication
//!
//! [`ReplicatedKb`] ([`repl`]) lifts the same layout to N byte-identical
//! replica directories with quorum-acknowledged appends: a batch is
//! acknowledged only once its sealed WAL frame is durable on at least
//! `quorum` replicas, so losing any `quorum - 1` disks cannot lose an
//! acknowledged fact. On open, the replica with the longest *verified*
//! acknowledged prefix is elected and recovered through the ordinary
//! [`DurableKb`] path; the rest are repaired to byte-identity. Below
//! quorum the store degrades to read-only with typed
//! [`StoreError::QuorumLost`] errors. The replica-scoped fault sites
//! `ReplicaAppendFail`, `ReplicaLag`, and `ReplicaKill` drive the chaos
//! and property tests.

pub mod kb;
pub mod repl;
pub mod segment;
pub mod wal;

pub use kb::{DurableKb, KbConfig, KbStats, RecoveryReport};
pub use repl::{ReplRecoveryReport, ReplStats, ReplicaHealth, ReplicatedKb, TenantKb};
pub use segment::{
    scan_frames, FrameScan, SegmentWriter, StoreError, KIND_SNAPSHOT, KIND_WAL_BATCH,
};
pub use wal::WalBatch;
