//! The durable knowledge base: a chased fixpoint kept consistent with an
//! on-disk snapshot + WAL pair, updated by folding batches through the
//! semi-naive incremental chase and recovered crash-consistently on open.

use crate::segment::{
    backoff_sleep, io_err, scan_frames, write_atomic, SegmentWriter, StoreError, KIND_SNAPSHOT,
    KIND_WAL_BATCH,
};
use crate::wal::WalBatch;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use tgdkit_chase::checkpoint::{
    read_instance, seal, tgds_fingerprint, write_instance, CheckpointError, CheckpointReader,
    CheckpointWriter,
};
use tgdkit_chase::{
    chase_extend_governed, chase_governed, chase_sharded_governed, CancelToken, ChaseBudget,
    ChaseOutcome, ChaseResult, ChaseVariant, TriggerSearch,
};
use tgdkit_instance::{Elem, Fact, Instance};
use tgdkit_logic::{PredId, Schema, Tgd, TgdSet};

/// Tuning knobs for a [`DurableKb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KbConfig {
    /// Budget for every fold and re-chase; a batch whose consequences
    /// exceed it is rejected ([`StoreError::ChaseDidNotTerminate`]) and
    /// not committed.
    pub budget: ChaseBudget,
    /// Chase variant; the restricted chase is the default and the one the
    /// incremental fold is cheapest for.
    pub variant: ChaseVariant,
    /// Trigger-search strategy for folds and re-chases.
    pub search: TriggerSearch,
    /// Shard count for *full* re-chases (the fresh-open chase and the
    /// retraction path). `1` keeps the unsharded engine; above that,
    /// [`tgdkit_chase::chase_sharded_governed`] runs the hash-partitioned
    /// engine — the result is byte-identical either way, so this is purely
    /// a throughput knob. Incremental folds stay on the semi-naive extend
    /// path regardless (their deltas are batch-sized, not instance-sized).
    pub shards: usize,
    /// Once the WAL grows past this many bytes, the next acknowledged
    /// batch folds the log into a fresh snapshot generation.
    pub compact_wal_bytes: u64,
    /// Replica directories for the store ([`crate::ReplicatedKb`]); `1`
    /// (or `0`) keeps the single-directory [`DurableKb`] layout.
    pub replicas: usize,
    /// Write quorum: an apply is acknowledged only once this many replicas
    /// have the batch durable. Clamped into `1..=replicas`.
    pub quorum: usize,
    /// Bounded retry attempts per replica for transient append faults
    /// (injected [`tgdkit_chase::FaultSite::ReplicaAppendFail`], real
    /// transient I/O, fsync failures) before the replica is demoted.
    pub replica_retries: u32,
    /// Base backoff in milliseconds between replica retries and un-wedge
    /// attempts; the actual sleep is jittered deterministically from the
    /// attempt ordinal. `0` disables sleeping (tests).
    pub retry_backoff_ms: u64,
    /// Bounded reopen-and-recover attempts a wedged [`DurableKb`] handle
    /// makes on the next apply before giving up with
    /// [`StoreError::Wedged`].
    pub unwedge_retries: u32,
}

impl Default for KbConfig {
    fn default() -> Self {
        KbConfig {
            budget: ChaseBudget::default(),
            variant: ChaseVariant::Restricted,
            search: TriggerSearch::Auto,
            shards: 1,
            compact_wal_bytes: 1 << 20,
            replicas: 1,
            quorum: 1,
            replica_retries: 2,
            retry_backoff_ms: 2,
            unwedge_retries: 2,
        }
    }
}

/// A full chase from `base` under `config`: the sharded engine when the
/// config asks for more than one shard, the legacy engine otherwise.
pub(crate) fn full_chase(
    base: &Instance,
    tgds: &[Tgd],
    config: &KbConfig,
    token: &CancelToken,
) -> ChaseResult {
    if config.shards > 1 {
        chase_sharded_governed(
            base,
            tgds,
            config.variant,
            config.budget,
            config.shards,
            token,
        )
    } else {
        chase_governed(
            base,
            tgds,
            config.variant,
            config.budget,
            config.search,
            token,
        )
    }
}

/// Cumulative counters for one [`DurableKb`] handle (recovery counters
/// cover the `open` that produced it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KbStats {
    /// Batches acknowledged (WAL frames fsynced).
    pub wal_appends: u64,
    /// Insert-only batches folded incrementally (no re-chase).
    pub folds: u64,
    /// Batches with effective retractions, re-chased from the base.
    pub full_rechases: u64,
    /// Log-into-snapshot compactions completed.
    pub compactions: u64,
    /// Compactions that failed (state stays durable on the old
    /// generation; the WAL keeps growing until one succeeds).
    pub compaction_failures: u64,
    /// Successful opens of pre-existing on-disk state.
    pub recoveries: u64,
    /// WAL batches replayed during recovery.
    pub replayed_batches: u64,
    /// Damage events (torn tails, checksum mismatches, malformed or
    /// out-of-sequence frames) truncated away during recovery.
    pub truncated_frames: u64,
    /// Snapshot generations skipped during recovery because they failed
    /// verification.
    pub snapshot_fallbacks: u64,
    /// Wedged handles brought back in place by the bounded
    /// reopen-and-recover retry on a subsequent apply (no process restart).
    pub unwedge_recoveries: u64,
}

/// What [`DurableKb::open`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The snapshot generation recovered into (0 for a fresh store).
    pub generation: u64,
    /// Sequence number after replay: total batches acknowledged over the
    /// store's lifetime.
    pub seq: u64,
    /// WAL batches replayed on top of the snapshot.
    pub replayed_batches: u64,
    /// Damage events truncated away (0 on a clean open).
    pub truncated_frames: u64,
    /// Corrupt snapshot generations skipped.
    pub snapshot_fallbacks: u64,
    /// `true` when the directory held no store and one was initialized.
    pub fresh: bool,
}

/// What one acknowledged [`DurableKb::apply`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyReport {
    /// The sequence number assigned to the batch.
    pub seq: u64,
    /// `true` when retractions forced a re-chase from the base instead of
    /// an incremental fold.
    pub rechased: bool,
    /// `true` when the batch tipped the WAL over the compaction threshold
    /// and a new snapshot generation was written.
    pub compacted: bool,
    /// Facts in the chased fixpoint after the batch.
    pub fact_count: usize,
}

pub(crate) fn snapshot_name(generation: u64) -> String {
    format!("snapshot-{generation:06}.tgks")
}

pub(crate) fn wal_name(generation: u64) -> String {
    format!("wal-{generation:06}.tgkw")
}

/// Marker file written when a store directory is initialized; its presence
/// distinguishes "this directory once held a store whose files were lost"
/// (a typed recovery error — silently re-initializing would change
/// verdicts) from "this directory is genuinely fresh".
pub(crate) const MARKER_NAME: &str = "store.tgkm";

/// The decoded payload of a snapshot frame.
pub(crate) struct Snapshot {
    pub(crate) sigma_fp: u64,
    pub(crate) seq: u64,
    pub(crate) nulls: BTreeSet<Elem>,
    pub(crate) base: Instance,
    pub(crate) chased: Instance,
}

pub(crate) fn encode_snapshot(
    sigma_fp: u64,
    seq: u64,
    base: &Instance,
    chased: &Instance,
    nulls: &BTreeSet<Elem>,
) -> Vec<u8> {
    let mut w = CheckpointWriter::new();
    w.u64(sigma_fp);
    w.u64(seq);
    w.count(nulls.len());
    for e in nulls {
        w.u32(e.0);
    }
    write_instance(&mut w, base);
    write_instance(&mut w, chased);
    seal(KIND_SNAPSHOT, &w.into_payload())
}

pub(crate) fn decode_snapshot(
    payload: &[u8],
    schema: &Schema,
) -> Result<Snapshot, CheckpointError> {
    let mut r = CheckpointReader::new(payload);
    let sigma_fp = r.u64()?;
    let seq = r.u64()?;
    let null_count = r.count(4)?;
    let mut nulls = BTreeSet::new();
    for _ in 0..null_count {
        nulls.insert(Elem(r.u32()?));
    }
    let base = read_instance(&mut r, schema)?;
    let chased = read_instance(&mut r, schema)?;
    if !r.is_exhausted() {
        return Err(CheckpointError::Malformed("trailing snapshot bytes"));
    }
    Ok(Snapshot {
        sigma_fp,
        seq,
        nulls,
        base,
        chased,
    })
}

/// The next knowledge-base state after a batch, before it is made durable.
pub(crate) struct FoldedState {
    pub(crate) base: Instance,
    pub(crate) chased: Instance,
    pub(crate) nulls: BTreeSet<Elem>,
    pub(crate) rechased: bool,
}

/// Applies a batch to `(base, chased, nulls)` *logically*, without
/// touching disk. Retractions are applied to the base first, then
/// insertions (so an insert wins over a retract of the same fact in one
/// batch). An insert-only batch folds through the semi-naive incremental
/// chase at delta cost; an effective retraction conservatively re-chases
/// from the updated base (no provenance is tracked, so which derived
/// facts a retraction invalidates is unknown). Both paths are
/// deterministic, which is what lets recovery replay reproduce the
/// uninterrupted state byte-for-byte.
#[allow(clippy::too_many_arguments)] // internal helper threading the full store state
pub(crate) fn fold_batch(
    base: &Instance,
    chased: &Instance,
    nulls: &BTreeSet<Elem>,
    inserts: &[Fact],
    retracts: &[Fact],
    tgds: &[Tgd],
    config: &KbConfig,
    token: &CancelToken,
) -> Result<FoldedState, StoreError> {
    let mut new_base = base.clone();
    let mut retracted_any = false;
    for f in retracts {
        if new_base.remove_fact(f.pred, &f.args) {
            retracted_any = true;
        }
    }
    for f in inserts {
        new_base.add_fact(f.pred, f.args.clone());
    }
    if retracted_any {
        let result = full_chase(&new_base, tgds, config, token);
        if result.outcome != ChaseOutcome::Terminated {
            return Err(StoreError::ChaseDidNotTerminate(result.outcome));
        }
        Ok(FoldedState {
            base: new_base,
            chased: result.instance,
            nulls: result.nulls,
            rechased: true,
        })
    } else {
        let (result, _) = chase_extend_governed(
            chased,
            nulls,
            inserts,
            tgds,
            config.variant,
            config.budget,
            config.search,
            token,
        );
        if result.outcome != ChaseOutcome::Terminated {
            return Err(StoreError::ChaseDidNotTerminate(result.outcome));
        }
        Ok(FoldedState {
            base: new_base,
            chased: result.instance,
            nulls: result.nulls,
            rechased: false,
        })
    }
}

/// A knowledge base whose chased fixpoint survives the process.
///
/// Invariant: the in-memory `(base, chased, nulls, seq)` always equals
/// what [`DurableKb::open`] would reconstruct from the directory — a
/// batch commits to memory in the same step that acknowledges its WAL
/// frame, and a failed append leaves both sides unchanged (or, after a
/// torn write, wedges the handle so the divergent tail can never be
/// extended).
#[derive(Debug)]
pub struct DurableKb {
    dir: PathBuf,
    schema: Schema,
    tgds: Vec<Tgd>,
    sigma_fp: u64,
    config: KbConfig,
    generation: u64,
    seq: u64,
    base: Instance,
    chased: Instance,
    nulls: BTreeSet<Elem>,
    wal: SegmentWriter,
    stats: KbStats,
}

impl DurableKb {
    /// Opens (or initializes) the store in `dir` for the given tgd set.
    /// See [`DurableKb::open_governed`].
    pub fn open(
        dir: &Path,
        set: &TgdSet,
        config: KbConfig,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        Self::open_governed(dir, set, config, &CancelToken::new())
    }

    /// Opens the store in `dir`, recovering crash-consistently:
    ///
    /// 1. pick the newest snapshot generation that verifies (corrupt ones
    ///    are skipped, counted as fallbacks);
    /// 2. replay the generation's WAL prefix frame by frame, stopping at
    ///    the first torn, corrupt, malformed, or out-of-sequence frame;
    /// 3. physically truncate the WAL at the damage point, so the durable
    ///    state equals the acknowledged state.
    ///
    /// A directory with snapshots where *none* verifies is an error, not a
    /// silent re-initialization — losing the base would change verdicts.
    /// An empty directory initializes generation 0 (the chase of the empty
    /// instance, so rules with empty bodies still fire).
    pub fn open_governed(
        dir: &Path,
        set: &TgdSet,
        config: KbConfig,
        token: &CancelToken,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create-dir", dir, e))?;
        let schema = set.schema().clone();
        let tgds = set.tgds().to_vec();
        let sigma_fp = tgds_fingerprint(&tgds);
        let mut stats = KbStats::default();

        // Newest verifying snapshot wins; no MANIFEST is needed because
        // generations are monotone and snapshots are self-validating.
        let mut generations = discover_generations(dir)?;
        generations.sort_unstable_by(|a, b| b.cmp(a));
        // A directory is fresh only if it holds no snapshot, no WAL file,
        // and no init marker. A WAL without any snapshot, or a marker with
        // neither, means store files were deleted out from under us —
        // re-initializing would silently drop acknowledged facts.
        let fresh =
            generations.is_empty() && !dir.join(MARKER_NAME).exists() && !has_wal_files(dir)?;
        if generations.is_empty() && !fresh {
            return Err(StoreError::Frame(CheckpointError::Malformed(
                "store directory lost every snapshot (marker or WAL present)",
            )));
        }
        let mut chosen: Option<(u64, Snapshot)> = None;
        let mut last_error = CheckpointError::Truncated;
        for generation in generations {
            let path = dir.join(snapshot_name(generation));
            let bytes = std::fs::read(&path).map_err(|e| io_err("read", &path, e))?;
            let scan = scan_frames(&bytes, KIND_SNAPSHOT, token);
            let decoded = match (scan.frames.as_slice(), scan.damage) {
                ([(_, payload)], None) => {
                    decode_snapshot(payload, &schema).map_err(StoreError::Frame)
                }
                (_, Some(damage)) => Err(StoreError::Frame(damage)),
                _ => Err(StoreError::Frame(CheckpointError::Malformed(
                    "snapshot frame count",
                ))),
            };
            match decoded {
                Ok(snap) => {
                    if snap.sigma_fp != sigma_fp {
                        return Err(StoreError::ContextMismatch("tgd set"));
                    }
                    chosen = Some((generation, snap));
                    break;
                }
                Err(StoreError::Frame(e)) => {
                    stats.snapshot_fallbacks += 1;
                    last_error = e;
                }
                Err(other) => return Err(other),
            }
        }

        let (generation, mut seq, mut base, mut chased, mut nulls) = match chosen {
            Some((generation, snap)) => {
                stats.recoveries += 1;
                (generation, snap.seq, snap.base, snap.chased, snap.nulls)
            }
            None if fresh => {
                let empty = Instance::new(schema.clone());
                let result = full_chase(&empty, &tgds, &config, token);
                if result.outcome != ChaseOutcome::Terminated {
                    return Err(StoreError::ChaseDidNotTerminate(result.outcome));
                }
                (0, 0, empty, result.instance, result.nulls)
            }
            None => return Err(StoreError::Frame(last_error)),
        };

        // Replay the WAL prefix that verifies, then truncate the rest.
        let wal_path = dir.join(wal_name(generation));
        let wal_bytes = match std::fs::read(&wal_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err("read", &wal_path, e)),
        };
        let scan = scan_frames(&wal_bytes, KIND_WAL_BATCH, token);
        let mut valid_len = scan.valid_len;
        let mut damaged = scan.damage.is_some();
        for (offset, payload) in scan.frames {
            let batch = match WalBatch::decode_payload(payload, &schema) {
                Ok(batch) if batch.seq == seq => batch,
                // Structurally broken or out-of-sequence: everything from
                // here on is untrustworthy — truncate as damage.
                _ => {
                    valid_len = offset;
                    damaged = true;
                    break;
                }
            };
            let folded = fold_batch(
                &base,
                &chased,
                &nulls,
                &batch.inserts,
                &batch.retracts,
                &tgds,
                &config,
                token,
            )?;
            base = folded.base;
            chased = folded.chased;
            nulls = folded.nulls;
            seq += 1;
            stats.replayed_batches += 1;
        }
        if damaged {
            stats.truncated_frames += 1;
            truncate_file(&wal_path, valid_len)?;
        }
        if fresh {
            // Initialize generation 0 durably before acknowledging
            // anything: an empty WAL, the empty-chase snapshot, and the
            // init marker that makes later file loss detectable.
            let snap = encode_snapshot(sigma_fp, seq, &base, &chased, &nulls);
            write_atomic(dir, &snapshot_name(0), &snap, token)?;
            write_atomic(dir, MARKER_NAME, b"tgdkit-store-v1\n", token)?;
            truncate_file(&wal_path, 0)?;
            valid_len = 0;
        } else if !dir.join(MARKER_NAME).exists() {
            // Pre-marker store layout: adopt the marker best-effort so the
            // orphan-damage check covers this directory from now on.
            let _ = write_atomic(dir, MARKER_NAME, b"tgdkit-store-v1\n", token);
        }
        let wal = SegmentWriter::open_append(&wal_path, valid_len)?;

        let report = RecoveryReport {
            generation,
            seq,
            replayed_batches: stats.replayed_batches,
            truncated_frames: stats.truncated_frames,
            snapshot_fallbacks: stats.snapshot_fallbacks,
            fresh,
        };
        Ok((
            DurableKb {
                dir: dir.to_path_buf(),
                schema,
                tgds,
                sigma_fp,
                config,
                generation,
                seq,
                base,
                chased,
                nulls,
                wal,
                stats,
            },
            report,
        ))
    }

    /// Applies one batch: fold logically, append + fsync the WAL frame,
    /// and only then commit to memory — so an error of any kind leaves
    /// the handle exactly as before (torn writes additionally wedge it;
    /// see [`StoreError::TornWrite`]). Auto-compacts past the configured
    /// WAL size; a *compaction* failure is recorded, not propagated,
    /// because the batch itself is already durable.
    pub fn apply_governed(
        &mut self,
        inserts: &[Fact],
        retracts: &[Fact],
        token: &CancelToken,
    ) -> Result<ApplyReport, StoreError> {
        if self.wal.is_wedged() {
            self.unwedge(token)?;
        }
        let folded = fold_batch(
            &self.base,
            &self.chased,
            &self.nulls,
            inserts,
            retracts,
            &self.tgds,
            &self.config,
            token,
        )?;
        let batch = WalBatch {
            seq: self.seq,
            inserts: inserts.to_vec(),
            retracts: retracts.to_vec(),
        };
        self.wal.append_frame(&batch.encode(), token)?;
        self.base = folded.base;
        self.chased = folded.chased;
        self.nulls = folded.nulls;
        self.seq += 1;
        self.stats.wal_appends += 1;
        if folded.rechased {
            self.stats.full_rechases += 1;
        } else {
            self.stats.folds += 1;
        }
        let mut compacted = false;
        if self.wal.len() >= self.config.compact_wal_bytes {
            match self.compact_governed(token) {
                Ok(()) => compacted = true,
                Err(_) => self.stats.compaction_failures += 1,
            }
        }
        Ok(ApplyReport {
            seq: batch.seq,
            rechased: folded.rechased,
            compacted,
            fact_count: self.chased.fact_count(),
        })
    }

    /// [`DurableKb::apply_governed`] with a fresh token.
    pub fn apply(
        &mut self,
        inserts: &[Fact],
        retracts: &[Fact],
    ) -> Result<ApplyReport, StoreError> {
        self.apply_governed(inserts, retracts, &CancelToken::new())
    }

    /// Bounded reopen-and-recover for a wedged handle: the invariant that
    /// memory always equals the acknowledged durable prefix means recovery
    /// is truncating the torn tail and reopening the WAL in place — no
    /// re-chase, no process restart. Retries `unwedge_retries` times with
    /// jittered backoff for transient I/O; exhausting them reports
    /// [`StoreError::Wedged`] (the pre-existing contract).
    fn unwedge(&mut self, token: &CancelToken) -> Result<(), StoreError> {
        let acked = self.wal.len();
        let mut attempt = 0u32;
        loop {
            match self.wal.truncate_to(acked, token) {
                Ok(()) => {
                    self.stats.unwedge_recoveries += 1;
                    return Ok(());
                }
                Err(_) if attempt < self.config.unwedge_retries => {
                    attempt += 1;
                    backoff_sleep(self.config.retry_backoff_ms, attempt, self.seq);
                }
                Err(_) => return Err(StoreError::Wedged),
            }
        }
    }

    /// Folds the WAL into a fresh snapshot generation: write
    /// `snapshot-(g+1)` atomically, start an empty `wal-(g+1)`, then
    /// best-effort delete generation `g`. A crash anywhere in between
    /// recovers either generation consistently (recovery picks the newest
    /// snapshot that verifies, and a missing WAL is an empty one).
    pub fn compact_governed(&mut self, token: &CancelToken) -> Result<(), StoreError> {
        let next = self.generation + 1;
        let snap = encode_snapshot(
            self.sigma_fp,
            self.seq,
            &self.base,
            &self.chased,
            &self.nulls,
        );
        write_atomic(&self.dir, &snapshot_name(next), &snap, token)?;
        let wal_path = self.dir.join(wal_name(next));
        truncate_file(&wal_path, 0)?;
        let wal = SegmentWriter::open_append(&wal_path, 0)?;
        let old = self.generation;
        self.generation = next;
        self.wal = wal;
        self.stats.compactions += 1;
        let _ = std::fs::remove_file(self.dir.join(snapshot_name(old)));
        let _ = std::fs::remove_file(self.dir.join(wal_name(old)));
        Ok(())
    }

    /// [`DurableKb::compact_governed`] with a fresh token.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        self.compact_governed(&CancelToken::new())
    }

    /// Re-fsyncs the WAL (appends already sync per frame, so this is a
    /// cheap belt-and-braces barrier for graceful shutdown).
    pub fn flush_governed(&mut self, token: &CancelToken) -> Result<(), StoreError> {
        self.wal.sync(token)
    }

    /// [`DurableKb::flush_governed`] with a fresh token.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.flush_governed(&CancelToken::new())
    }

    /// Fingerprint of the tgd set the store is bound to (what
    /// [`DurableKb::open`] checks incoming sets against).
    pub fn sigma_fingerprint(&self) -> u64 {
        self.sigma_fp
    }

    /// The chased fixpoint (base ∪ everything derivable from it).
    pub fn chased(&self) -> &Instance {
        &self.chased
    }

    /// The base instance (exactly the acknowledged inserts minus
    /// retracts; no derived facts).
    pub fn base(&self) -> &Instance {
        &self.base
    }

    /// Labeled nulls of the chased fixpoint.
    pub fn nulls(&self) -> &BTreeSet<Elem> {
        &self.nulls
    }

    /// `true` iff the exact tuple is in the chased fixpoint.
    pub fn holds(&self, pred: PredId, args: &[Elem]) -> bool {
        self.chased.contains_fact(pred, args)
    }

    /// The schema the store is bound to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Batches acknowledged over the store's lifetime.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Current snapshot generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Bytes currently acknowledged in the WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len()
    }

    /// `true` after a torn write; reopen to recover.
    pub fn is_wedged(&self) -> bool {
        self.wal.is_wedged()
    }

    /// Counters for this handle.
    pub fn stats(&self) -> KbStats {
        self.stats
    }

    /// Consumes the handle, releasing the recovered state for a caller
    /// (the replicated store's failover path) that continues the timeline
    /// under its own writers: `(generation, seq, base, chased, nulls)`.
    pub(crate) fn into_state(self) -> (u64, u64, Instance, Instance, BTreeSet<Elem>) {
        (
            self.generation,
            self.seq,
            self.base,
            self.chased,
            self.nulls,
        )
    }
}

pub(crate) fn discover_generations(dir: &Path) -> Result<Vec<u64>, StoreError> {
    let mut generations = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("read-dir", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read-dir", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(gen) = name
            .strip_prefix("snapshot-")
            .and_then(|rest| rest.strip_suffix(".tgks"))
        {
            if let Ok(gen) = gen.parse::<u64>() {
                generations.push(gen);
            }
        }
    }
    Ok(generations)
}

/// `true` when the directory holds any `wal-*.tgkw` file.
pub(crate) fn has_wal_files(dir: &Path) -> Result<bool, StoreError> {
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("read-dir", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read-dir", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("wal-") && name.ends_with(".tgkw") {
            return Ok(true);
        }
    }
    Ok(false)
}

pub(crate) fn truncate_file(path: &Path, len: u64) -> Result<(), StoreError> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(path)
        .map_err(|e| io_err("open", path, e))?;
    file.set_len(len).map_err(|e| io_err("truncate", path, e))?;
    file.sync_all().map_err(|e| io_err("fsync", path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgdkit_chase::{FaultPlan, FaultSite};
    use tgdkit_logic::parse_tgds;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tgdkit-store-kb-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_set() -> TgdSet {
        let mut schema = Schema::default();
        let tgds = parse_tgds(
            &mut schema,
            "E(x,y), E(y,z) -> E(x,z). P(x) -> exists w : E(x,w).",
        )
        .unwrap();
        TgdSet::new(schema, tgds).unwrap()
    }

    fn e_fact(set: &TgdSet, x: u32, y: u32) -> Fact {
        Fact::new(set.schema().pred_id("E").unwrap(), vec![Elem(x), Elem(y)])
    }

    fn p_fact(set: &TgdSet, x: u32) -> Fact {
        Fact::new(set.schema().pred_id("P").unwrap(), vec![Elem(x)])
    }

    #[test]
    fn fresh_open_then_reopen_round_trips() {
        let dir = tmpdir("roundtrip");
        let set = test_set();
        let (mut kb, report) = DurableKb::open(&dir, &set, KbConfig::default()).unwrap();
        assert!(report.fresh);
        assert_eq!(report.seq, 0);
        kb.apply(&[e_fact(&set, 0, 1), e_fact(&set, 1, 2)], &[])
            .unwrap();
        // 2 has no outgoing edge, so the P-rule must invent a witness.
        kb.apply(&[p_fact(&set, 2)], &[]).unwrap();
        let e = set.schema().pred_id("E").unwrap();
        assert!(kb.holds(e, &[Elem(0), Elem(2)]), "transitivity fold fired");
        assert_eq!(kb.nulls().len(), 1, "P-rule invented a null");

        let (reopened, report) = DurableKb::open(&dir, &set, KbConfig::default()).unwrap();
        assert!(!report.fresh);
        assert_eq!(report.replayed_batches, 2);
        assert_eq!(report.truncated_frames, 0);
        assert_eq!(reopened.chased(), kb.chased(), "restart ≡ uninterrupted");
        assert_eq!(reopened.base(), kb.base());
        assert_eq!(reopened.nulls(), kb.nulls());
        assert_eq!(reopened.seq(), kb.seq());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retraction_rechases_and_survives_restart() {
        let dir = tmpdir("retract");
        let set = test_set();
        let (mut kb, _) = DurableKb::open(&dir, &set, KbConfig::default()).unwrap();
        kb.apply(
            &[e_fact(&set, 0, 1), e_fact(&set, 1, 2), e_fact(&set, 2, 3)],
            &[],
        )
        .unwrap();
        let e = set.schema().pred_id("E").unwrap();
        assert!(kb.holds(e, &[Elem(0), Elem(3)]));
        let report = kb.apply(&[], &[e_fact(&set, 1, 2)]).unwrap();
        assert!(report.rechased);
        assert!(
            !kb.holds(e, &[Elem(0), Elem(3)]),
            "derived fact gone after retract"
        );
        assert!(kb.holds(e, &[Elem(0), Elem(1)]));
        let (reopened, _) = DurableKb::open(&dir, &set, KbConfig::default()).unwrap();
        assert_eq!(reopened.chased(), kb.chased());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_resets_wal_and_preserves_state() {
        let dir = tmpdir("compact");
        let set = test_set();
        let config = KbConfig {
            compact_wal_bytes: 1, // compact after every batch
            ..KbConfig::default()
        };
        let (mut kb, _) = DurableKb::open(&dir, &set, config).unwrap();
        let r1 = kb.apply(&[e_fact(&set, 0, 1)], &[]).unwrap();
        assert!(r1.compacted);
        assert_eq!(kb.generation(), 1);
        assert_eq!(kb.wal_bytes(), 0);
        kb.apply(&[e_fact(&set, 1, 2)], &[]).unwrap();
        assert_eq!(kb.generation(), 2);
        assert_eq!(kb.stats().compactions, 2);
        // Old generations are cleaned up; recovery lands on the newest.
        assert!(!dir.join(snapshot_name(0)).exists());
        let (reopened, report) = DurableKb::open(&dir, &set, config).unwrap();
        assert_eq!(report.generation, 2);
        assert_eq!(
            report.replayed_batches, 0,
            "all state lives in the snapshot"
        );
        assert_eq!(reopened.chased(), kb.chased());
        assert_eq!(reopened.seq(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_wedges_then_recovery_truncates() {
        let dir = tmpdir("torn");
        let set = test_set();
        let (mut kb, _) = DurableKb::open(&dir, &set, KbConfig::default()).unwrap();
        kb.apply(&[e_fact(&set, 0, 1)], &[]).unwrap();
        let acked = kb.chased().clone();
        let tearing = CancelToken::with_faults(FaultPlan::always(FaultSite::WalTornWrite));
        let err = kb
            .apply_governed(&[e_fact(&set, 1, 2)], &[], &tearing)
            .unwrap_err();
        assert!(matches!(err, StoreError::TornWrite { .. }));
        assert!(kb.is_wedged());
        assert_eq!(kb.chased(), &acked, "unacknowledged batch not committed");
        drop(kb);
        let (recovered, report) = DurableKb::open(&dir, &set, KbConfig::default()).unwrap();
        assert_eq!(report.truncated_frames, 1);
        assert_eq!(report.replayed_batches, 1);
        assert_eq!(recovered.chased(), &acked, "recovery = acknowledged prefix");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wedged_handle_unwedges_on_next_apply() {
        let dir = tmpdir("unwedge");
        let set = test_set();
        let config = KbConfig {
            retry_backoff_ms: 0,
            ..KbConfig::default()
        };
        let (mut kb, _) = DurableKb::open(&dir, &set, config).unwrap();
        kb.apply(&[e_fact(&set, 0, 1)], &[]).unwrap();
        let tearing = CancelToken::with_faults(FaultPlan::always(FaultSite::WalTornWrite));
        kb.apply_governed(&[e_fact(&set, 1, 2)], &[], &tearing)
            .unwrap_err();
        assert!(kb.is_wedged());
        // The next apply reopens-and-recovers in place: the torn tail is
        // truncated, the handle un-wedges, and the batch goes through.
        let report = kb.apply(&[e_fact(&set, 1, 2)], &[]).unwrap();
        assert_eq!(report.seq, 1);
        assert!(!kb.is_wedged());
        assert_eq!(kb.stats().unwedge_recoveries, 1);
        let e = set.schema().pred_id("E").unwrap();
        assert!(kb.holds(e, &[Elem(0), Elem(2)]));
        // Disk agrees: a reopen replays both acknowledged batches cleanly.
        let (reopened, report) = DurableKb::open(&dir, &set, config).unwrap();
        assert_eq!(report.truncated_frames, 0);
        assert_eq!(report.replayed_batches, 2);
        assert_eq!(reopened.chased(), kb.chased());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deleting_every_snapshot_is_a_typed_error_not_a_reinit() {
        let dir = tmpdir("orphan");
        let set = test_set();
        let (mut kb, _) = DurableKb::open(&dir, &set, KbConfig::default()).unwrap();
        kb.apply(&[e_fact(&set, 0, 1)], &[]).unwrap();
        drop(kb);
        // Losing the whole generation (snapshot + WAL) must not silently
        // re-initialize: the marker records that a store lived here.
        std::fs::remove_file(dir.join(snapshot_name(0))).unwrap();
        std::fs::remove_file(dir.join(wal_name(0))).unwrap();
        let err = DurableKb::open(&dir, &set, KbConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            StoreError::Frame(CheckpointError::Malformed(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_failure_is_retryable_and_not_committed() {
        let dir = tmpdir("fsync");
        let set = test_set();
        let (mut kb, _) = DurableKb::open(&dir, &set, KbConfig::default()).unwrap();
        let before = kb.chased().clone();
        let failing = CancelToken::with_faults(FaultPlan::always(FaultSite::FsyncFail));
        let err = kb
            .apply_governed(&[e_fact(&set, 0, 1)], &[], &failing)
            .unwrap_err();
        assert!(matches!(err, StoreError::FsyncFailed { .. }));
        assert_eq!(kb.chased(), &before);
        assert_eq!(kb.seq(), 0);
        // The same batch goes through once fsync works again.
        kb.apply(&[e_fact(&set, 0, 1)], &[]).unwrap();
        assert_eq!(kb.seq(), 1);
        let (reopened, _) = DurableKb::open(&dir, &set, KbConfig::default()).unwrap();
        assert_eq!(reopened.chased(), kb.chased());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn opening_with_a_different_program_is_rejected() {
        let dir = tmpdir("sigma");
        let set = test_set();
        let (mut kb, _) = DurableKb::open(&dir, &set, KbConfig::default()).unwrap();
        kb.apply(&[e_fact(&set, 0, 1)], &[]).unwrap();
        drop(kb);
        let mut other_schema = Schema::default();
        let other_tgds = parse_tgds(&mut other_schema, "E(x,y) -> E(y,x). P(x) -> P(x).").unwrap();
        let other = TgdSet::new(other_schema, other_tgds).unwrap();
        assert_eq!(
            DurableKb::open(&dir, &other, KbConfig::default()).unwrap_err(),
            StoreError::ContextMismatch("tgd set")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_rechase_matches_unsharded() {
        // Same batches through a shards=4 config and a shards=1 config:
        // the retraction path re-chases through different engines, but the
        // acknowledged fixpoints must be identical.
        let set = test_set();
        let mut kbs = Vec::new();
        for shards in [1usize, 4] {
            let dir = tmpdir(&format!("shards{shards}"));
            let config = KbConfig {
                shards,
                ..KbConfig::default()
            };
            let (mut kb, _) = DurableKb::open(&dir, &set, config).unwrap();
            kb.apply(
                &[e_fact(&set, 0, 1), e_fact(&set, 1, 2), e_fact(&set, 2, 3)],
                &[],
            )
            .unwrap();
            let report = kb.apply(&[p_fact(&set, 3)], &[e_fact(&set, 1, 2)]).unwrap();
            assert!(report.rechased);
            kbs.push((dir, kb));
        }
        let (plain, sharded) = (&kbs[0].1, &kbs[1].1);
        assert_eq!(plain.chased(), sharded.chased());
        assert_eq!(plain.base(), sharded.base());
        assert_eq!(plain.nulls(), sharded.nulls());
        for (dir, kb) in kbs {
            drop(kb);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_previous_generation() {
        let dir = tmpdir("fallback");
        let set = test_set();
        let config = KbConfig {
            compact_wal_bytes: 1,
            ..KbConfig::default()
        };
        let (mut kb, _) = DurableKb::open(&dir, &set, config).unwrap();
        kb.apply(&[e_fact(&set, 0, 1)], &[]).unwrap(); // → generation 1
        let gen1 = kb.chased().clone();
        drop(kb);
        // Forge a corrupt newer snapshot: recovery must skip it and land
        // on generation 1, not panic or lose the store.
        std::fs::write(dir.join(snapshot_name(2)), b"TGCKgarbage-not-a-frame").unwrap();
        let (recovered, report) = DurableKb::open(&dir, &set, config).unwrap();
        assert_eq!(report.snapshot_fallbacks, 1);
        assert_eq!(report.generation, 1);
        assert_eq!(recovered.chased(), &gen1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
