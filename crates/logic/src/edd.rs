//! Existential disjunctive dependencies (paper §4.1) and disjunctive
//! dependencies (paper Appendix B).

use crate::atom::{conjunction_vars, Atom, Var};
use crate::egd::Egd;
use crate::error::LogicError;
use crate::schema::Schema;
use crate::tgd::Tgd;

/// One disjunct `ψ_i(x̄_i)` of an [`Edd`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EddDisjunct {
    /// An equality expression `y = z` between two body variables.
    Eq(Var, Var),
    /// An existentially quantified conjunction `∃ȳ_i χ_i(x̄_i, ȳ_i)`.
    ///
    /// Variables `< universal_count` of the owning [`Edd`] refer to body
    /// variables; the remaining variables are the local existential
    /// variables of this disjunct.
    Exists(Vec<Atom<Var>>),
}

impl EddDisjunct {
    /// Number of existential variables of this disjunct relative to an edd
    /// with `universal_count` body variables.
    pub fn existential_count(&self, universal_count: usize) -> usize {
        match self {
            EddDisjunct::Eq(..) => 0,
            EddDisjunct::Exists(atoms) => conjunction_vars(atoms)
                .into_iter()
                .filter(|v| v.index() >= universal_count)
                .count(),
        }
    }
}

/// An existential disjunctive dependency (edd, paper §4.1):
/// `∀x̄ (φ(x̄) → ⋁_{i=1..k} ψ_i(x̄_i))`, where each disjunct is either an
/// equality between body variables or an existentially quantified
/// conjunction of atoms.
///
/// Invariants maintained by [`Edd::new`]: variables are densely renumbered
/// with the body variables first (`Var(0) .. Var(universal_count)`); each
/// disjunct's existential variables are renumbered locally starting at
/// `universal_count`; the disjunct list is non-empty; equality disjuncts
/// equate body variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edd {
    body: Vec<Atom<Var>>,
    disjuncts: Vec<EddDisjunct>,
    universal_count: u32,
}

impl Edd {
    /// Builds an edd, renumbering variables densely (body variables first,
    /// each disjunct's existential variables locally after them).
    pub fn new(body: Vec<Atom<Var>>, disjuncts: Vec<EddDisjunct>) -> Result<Edd, LogicError> {
        if disjuncts.is_empty() {
            return Err(LogicError::EmptyHead);
        }
        let order = conjunction_vars(&body);
        let universal_count = order.len();
        let body_index = |v: Var| order.iter().position(|&w| w == v);
        let new_body: Vec<Atom<Var>> = body
            .iter()
            .map(|a| a.map(|&v| Var(body_index(v).unwrap() as u32)))
            .collect();
        let mut new_disjuncts = Vec::with_capacity(disjuncts.len());
        for d in &disjuncts {
            match d {
                EddDisjunct::Eq(a, b) => {
                    let a = body_index(*a)
                        .map(|i| Var(i as u32))
                        .ok_or(LogicError::UnsafeEqualityVariable(*a))?;
                    let b = body_index(*b)
                        .map(|i| Var(i as u32))
                        .ok_or(LogicError::UnsafeEqualityVariable(*b))?;
                    new_disjuncts.push(EddDisjunct::Eq(a, b));
                }
                EddDisjunct::Exists(atoms) => {
                    if atoms.is_empty() {
                        return Err(LogicError::EmptyHead);
                    }
                    // Existential variables are local to the disjunct.
                    let mut locals: Vec<Var> = Vec::new();
                    let mut mapped = Vec::with_capacity(atoms.len());
                    for atom in atoms {
                        mapped.push(atom.map(|&v| {
                            if let Some(i) = body_index(v) {
                                Var(i as u32)
                            } else if let Some(i) = locals.iter().position(|&w| w == v) {
                                Var((universal_count + i) as u32)
                            } else {
                                locals.push(v);
                                Var((universal_count + locals.len() - 1) as u32)
                            }
                        }));
                    }
                    new_disjuncts.push(EddDisjunct::Exists(mapped));
                }
            }
        }
        if universal_count == 0
            && new_disjuncts.iter().all(|d| match d {
                EddDisjunct::Eq(..) => true,
                EddDisjunct::Exists(atoms) => conjunction_vars(atoms).is_empty(),
            })
        {
            return Err(LogicError::NoVariables);
        }
        Ok(Edd {
            body: new_body,
            disjuncts: new_disjuncts,
            universal_count: universal_count as u32,
        })
    }

    /// The body conjunction `φ(x̄)` (possibly empty).
    #[inline]
    pub fn body(&self) -> &[Atom<Var>] {
        &self.body
    }

    /// The disjuncts `ψ_1, ..., ψ_k` (non-empty).
    #[inline]
    pub fn disjuncts(&self) -> &[EddDisjunct] {
        &self.disjuncts
    }

    /// Number of distinct universally quantified variables.
    #[inline]
    pub fn universal_count(&self) -> usize {
        self.universal_count as usize
    }

    /// Maximum number of existential variables across disjuncts (the `m`
    /// bound of the family `E_{n,m}`, paper §4.2 Step 1).
    pub fn max_existential_count(&self) -> usize {
        self.disjuncts
            .iter()
            .map(|d| d.existential_count(self.universal_count()))
            .max()
            .unwrap_or(0)
    }

    /// `true` when the edd is a **disjunctive dependency** (dd, Appendix B):
    /// no existential variables, and every non-equality disjunct is a single
    /// atom.
    pub fn is_dd(&self) -> bool {
        self.disjuncts.iter().all(|d| match d {
            EddDisjunct::Eq(..) => true,
            EddDisjunct::Exists(atoms) => atoms.len() == 1 && self.disjunct_existential_free(d),
        })
    }

    fn disjunct_existential_free(&self, d: &EddDisjunct) -> bool {
        d.existential_count(self.universal_count()) == 0
    }

    /// `true` when the edd is (syntactically) a tgd: a single
    /// existential-conjunction disjunct.
    pub fn is_tgd(&self) -> bool {
        self.disjuncts.len() == 1 && matches!(self.disjuncts[0], EddDisjunct::Exists(_))
    }

    /// `true` when the edd is (syntactically) an egd: a single equality
    /// disjunct with a non-empty body.
    pub fn is_egd(&self) -> bool {
        self.disjuncts.len() == 1
            && matches!(self.disjuncts[0], EddDisjunct::Eq(..))
            && !self.body.is_empty()
    }

    /// Converts to a [`Tgd`] when [`Edd::is_tgd`] holds.
    pub fn to_tgd(&self) -> Option<Tgd> {
        if let [EddDisjunct::Exists(atoms)] = self.disjuncts.as_slice() {
            Tgd::new(self.body.clone(), atoms.clone()).ok()
        } else {
            None
        }
    }

    /// Converts to an [`Egd`] when [`Edd::is_egd`] holds.
    pub fn to_egd(&self) -> Option<Egd> {
        if let [EddDisjunct::Eq(a, b)] = self.disjuncts.as_slice() {
            Egd::new(self.body.clone(), *a, *b).ok()
        } else {
            None
        }
    }

    /// The tgd `∀x̄ (φ(x̄) → ψ_i(x̄_i))` selecting the `i`-th disjunct
    /// (used in paper §4.2 Step 2 and Appendix B), or `None` for equality
    /// disjuncts or when the selection would be variable-free.
    pub fn select_disjunct_as_tgd(&self, i: usize) -> Option<Tgd> {
        match self.disjuncts.get(i)? {
            EddDisjunct::Eq(..) => None,
            EddDisjunct::Exists(atoms) => Tgd::new(self.body.clone(), atoms.clone()).ok(),
        }
    }

    /// The egd `∀x̄ (φ(x̄) → y = z)` selecting the `i`-th disjunct, or
    /// `None` for non-equality disjuncts.
    pub fn select_disjunct_as_egd(&self, i: usize) -> Option<Egd> {
        match self.disjuncts.get(i)? {
            EddDisjunct::Eq(a, b) => Egd::new(self.body.clone(), *a, *b).ok(),
            EddDisjunct::Exists(_) => None,
        }
    }

    /// Validates all atoms against `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<(), LogicError> {
        for atom in &self.body {
            atom.validate(schema)?;
        }
        for d in &self.disjuncts {
            if let EddDisjunct::Exists(atoms) = d {
                for atom in atoms {
                    atom.validate(schema)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::builder().pred("R", 2).pred("T", 1).build()
    }

    fn atom(s: &Schema, name: &str, vars: &[u32]) -> Atom<Var> {
        Atom::new(
            s.pred_id(name).unwrap(),
            vars.iter().map(|&v| Var(v)).collect(),
        )
    }

    #[test]
    fn mixed_disjuncts() {
        let s = schema();
        // R(x,y) -> x = y  |  exists z : R(y,z)  |  T(x).
        let edd = Edd::new(
            vec![atom(&s, "R", &[0, 1])],
            vec![
                EddDisjunct::Eq(Var(0), Var(1)),
                EddDisjunct::Exists(vec![atom(&s, "R", &[1, 7])]),
                EddDisjunct::Exists(vec![atom(&s, "T", &[0])]),
            ],
        )
        .unwrap();
        assert_eq!(edd.universal_count(), 2);
        assert_eq!(edd.max_existential_count(), 1);
        assert!(!edd.is_dd());
        assert!(!edd.is_tgd());
        assert!(!edd.is_egd());
        assert!(edd.validate(&s).is_ok());
        // Existential var renumbered to 2 (locals start after universals).
        match &edd.disjuncts()[1] {
            EddDisjunct::Exists(atoms) => assert_eq!(atoms[0].args, vec![Var(1), Var(2)]),
            _ => panic!("expected exists"),
        }
    }

    #[test]
    fn local_existential_numbering_per_disjunct() {
        let s = schema();
        // Two disjuncts with their own existential z; both renumber to Var(1).
        let edd = Edd::new(
            vec![atom(&s, "T", &[0])],
            vec![
                EddDisjunct::Exists(vec![atom(&s, "R", &[0, 9])]),
                EddDisjunct::Exists(vec![atom(&s, "R", &[8, 0])]),
            ],
        )
        .unwrap();
        for d in edd.disjuncts() {
            if let EddDisjunct::Exists(atoms) = d {
                assert!(atoms[0].args.contains(&Var(1)));
            }
        }
    }

    #[test]
    fn tgd_and_egd_views() {
        let s = schema();
        let as_tgd = Edd::new(
            vec![atom(&s, "T", &[0])],
            vec![EddDisjunct::Exists(vec![atom(&s, "R", &[0, 1])])],
        )
        .unwrap();
        assert!(as_tgd.is_tgd());
        let tgd = as_tgd.to_tgd().unwrap();
        assert_eq!(tgd.universal_count(), 1);
        assert_eq!(tgd.existential_count(), 1);

        let as_egd = Edd::new(
            vec![atom(&s, "R", &[0, 1])],
            vec![EddDisjunct::Eq(Var(0), Var(1))],
        )
        .unwrap();
        assert!(as_egd.is_egd());
        assert!(as_egd.to_egd().is_some());
        assert!(as_egd.to_tgd().is_none());
    }

    #[test]
    fn dd_detection() {
        let s = schema();
        // R(x,y) -> T(x) | x = y is a dd.
        let dd = Edd::new(
            vec![atom(&s, "R", &[0, 1])],
            vec![
                EddDisjunct::Exists(vec![atom(&s, "T", &[0])]),
                EddDisjunct::Eq(Var(0), Var(1)),
            ],
        )
        .unwrap();
        assert!(dd.is_dd());
        // With an existential it is not a dd.
        let not_dd = Edd::new(
            vec![atom(&s, "R", &[0, 1])],
            vec![EddDisjunct::Exists(vec![atom(&s, "R", &[0, 5])])],
        )
        .unwrap();
        assert!(!not_dd.is_dd());
    }

    #[test]
    fn equality_requires_body_variables() {
        let s = schema();
        let err = Edd::new(
            vec![atom(&s, "T", &[0])],
            vec![EddDisjunct::Eq(Var(0), Var(3))],
        )
        .unwrap_err();
        assert_eq!(err, LogicError::UnsafeEqualityVariable(Var(3)));
    }

    #[test]
    fn disjunct_selection() {
        let s = schema();
        let edd = Edd::new(
            vec![atom(&s, "R", &[0, 1])],
            vec![
                EddDisjunct::Eq(Var(0), Var(1)),
                EddDisjunct::Exists(vec![atom(&s, "T", &[0])]),
            ],
        )
        .unwrap();
        assert!(edd.select_disjunct_as_egd(0).is_some());
        assert!(edd.select_disjunct_as_tgd(0).is_none());
        assert!(edd.select_disjunct_as_tgd(1).is_some());
        assert!(edd.select_disjunct_as_egd(1).is_none());
        assert!(edd.select_disjunct_as_tgd(2).is_none());
    }

    #[test]
    fn no_disjuncts_rejected() {
        let s = schema();
        assert!(Edd::new(vec![atom(&s, "T", &[0])], vec![]).is_err());
    }
}
