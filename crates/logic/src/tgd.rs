//! Tuple-generating dependencies and their syntactic classes (paper §2).

use crate::atom::{conjunction_vars, Atom, Var};
use crate::error::LogicError;
use crate::schema::Schema;

/// A tuple-generating dependency (tgd)
/// `∀x̄∀ȳ (φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄))` over some schema (paper §2).
///
/// Invariants maintained by [`Tgd::new`]:
///
/// - variables are densely renumbered so that the **universal** variables
///   (those occurring in the body) are `Var(0) .. Var(universal_count)` in
///   order of first occurrence in the body, followed by the **existential**
///   variables in order of first occurrence in the head;
/// - the head is non-empty;
/// - at least one variable occurs (paper §2, footnote 2).
///
/// The body may be empty, in which case every variable is existential.
///
/// ```
/// use tgdkit_logic::{parse_tgd, Schema};
/// let mut schema = Schema::default();
/// let tgd = parse_tgd(&mut schema, "R(x,y) -> exists z : S(y,z)").unwrap();
/// assert_eq!(tgd.universal_count(), 2);
/// assert_eq!(tgd.existential_count(), 1);
/// assert!(tgd.is_linear() && tgd.is_guarded() && tgd.is_frontier_guarded());
/// assert!(!tgd.is_full());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tgd {
    body: Vec<Atom<Var>>,
    head: Vec<Atom<Var>>,
    universal_count: u32,
    num_vars: u32,
}

impl Tgd {
    /// Builds a tgd from body and head conjunctions, renumbering variables
    /// into the canonical dense layout.
    ///
    /// Input variables may use arbitrary indices; variables occurring only
    /// in the head become existential.
    pub fn new(body: Vec<Atom<Var>>, head: Vec<Atom<Var>>) -> Result<Tgd, LogicError> {
        if head.is_empty() {
            return Err(LogicError::EmptyHead);
        }
        // Dense renumbering: body vars first (universal), then head-only vars
        // (existential).
        let mut table: Vec<(Var, Var)> = Vec::new();
        let lookup = |table: &mut Vec<(Var, Var)>, v: Var| -> Var {
            if let Some(&(_, w)) = table.iter().find(|&&(orig, _)| orig == v) {
                w
            } else {
                let w = Var(table.len() as u32);
                table.push((v, w));
                w
            }
        };
        let mut new_body = Vec::with_capacity(body.len());
        for atom in &body {
            new_body.push(atom.map(|&v| lookup(&mut table, v)));
        }
        let universal_count = table.len() as u32;
        let mut new_head = Vec::with_capacity(head.len());
        for atom in &head {
            new_head.push(atom.map(|&v| lookup(&mut table, v)));
        }
        let num_vars = table.len() as u32;
        if num_vars == 0 {
            return Err(LogicError::NoVariables);
        }
        Ok(Tgd {
            body: new_body,
            head: new_head,
            universal_count,
            num_vars,
        })
    }

    /// The body conjunction `φ(x̄,ȳ)` (possibly empty).
    #[inline]
    pub fn body(&self) -> &[Atom<Var>] {
        &self.body
    }

    /// The head conjunction `ψ(x̄,z̄)` (non-empty).
    #[inline]
    pub fn head(&self) -> &[Atom<Var>] {
        &self.head
    }

    /// Number of distinct universally quantified variables (the `n` of
    /// `TGD_{n,m}`).
    #[inline]
    pub fn universal_count(&self) -> usize {
        self.universal_count as usize
    }

    /// Number of distinct existentially quantified variables (the `m` of
    /// `TGD_{n,m}`).
    #[inline]
    pub fn existential_count(&self) -> usize {
        (self.num_vars - self.universal_count) as usize
    }

    /// Total number of distinct variables.
    #[inline]
    pub fn var_count(&self) -> usize {
        self.num_vars as usize
    }

    /// `true` if `v` is existentially quantified.
    #[inline]
    pub fn is_existential(&self, v: Var) -> bool {
        v.0 >= self.universal_count
    }

    /// The frontier `fr(σ)`: universally quantified variables occurring in
    /// the head, in ascending order.
    pub fn frontier(&self) -> Vec<Var> {
        let mut out: Vec<Var> = conjunction_vars(&self.head)
            .into_iter()
            .filter(|v| !self.is_existential(*v))
            .collect();
        out.sort_unstable();
        out
    }

    /// `true` if the tgd has no existentially quantified variable (class
    /// `FTGD`).
    pub fn is_full(&self) -> bool {
        self.universal_count == self.num_vars
    }

    /// `true` if the body has at most one atom (class `LTGD`).
    pub fn is_linear(&self) -> bool {
        self.body.len() <= 1
    }

    /// `true` if the body is empty or some body atom contains all the
    /// universally quantified variables (class `GTGD`).
    pub fn is_guarded(&self) -> bool {
        self.guard_index().is_some() || self.body.is_empty()
    }

    /// Index of a guard atom (a body atom containing every universal
    /// variable), if any. Empty-body tgds have no guard atom but are still
    /// guarded.
    pub fn guard_index(&self) -> Option<usize> {
        let universals = self.universal_count;
        self.body
            .iter()
            .position(|atom| (0..universals).all(|v| atom.args.contains(&Var(v))))
    }

    /// `true` if the body is empty or some body atom contains all frontier
    /// variables (class `FGTGD`).
    pub fn is_frontier_guarded(&self) -> bool {
        self.frontier_guard_index().is_some() || self.body.is_empty()
    }

    /// Index of a frontier-guard atom (a body atom containing every frontier
    /// variable), if any.
    pub fn frontier_guard_index(&self) -> Option<usize> {
        let frontier = self.frontier();
        self.body
            .iter()
            .position(|atom| frontier.iter().all(|v| atom.args.contains(v)))
    }

    /// Classifies the tgd into the (overlapping) classes of paper §2.
    pub fn class(&self) -> TgdClass {
        TgdClass {
            full: self.is_full(),
            linear: self.is_linear(),
            guarded: self.is_guarded(),
            frontier_guarded: self.is_frontier_guarded(),
        }
    }

    /// Validates all atoms against `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<(), LogicError> {
        for atom in self.body.iter().chain(self.head.iter()) {
            atom.validate(schema)?;
        }
        Ok(())
    }

    /// The existential variables, in ascending order.
    pub fn existential_vars(&self) -> impl Iterator<Item = Var> + '_ {
        (self.universal_count..self.num_vars).map(Var)
    }

    /// The universal variables, in ascending order.
    pub fn universal_vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.universal_count).map(Var)
    }
}

/// Membership of a tgd in the syntactic classes of paper §2. The classes
/// properly nest: `LTGD ⊊ GTGD ⊊ FGTGD`, and `FTGD` is incomparable with all
/// three.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TgdClass {
    /// No existential variables (`FTGD`).
    pub full: bool,
    /// At most one body atom (`LTGD`).
    pub linear: bool,
    /// Guard atom covering all universal variables (`GTGD`).
    pub guarded: bool,
    /// Guard atom covering the frontier (`FGTGD`).
    pub frontier_guarded: bool,
}

impl TgdClass {
    /// Name of the most specific class among linear/guarded/frontier-guarded,
    /// or `"tgd"` if none applies.
    pub fn most_specific(&self) -> &'static str {
        if self.linear {
            "linear"
        } else if self.guarded {
            "guarded"
        } else if self.frontier_guarded {
            "frontier-guarded"
        } else {
            "tgd"
        }
    }
}

/// The `(n, m)` profile of a set of tgds: the maximum number of universal
/// and existential variables across the set, i.e. the least `(n, m)` with
/// `Σ ∈ TGD_{n,m}`.
pub fn set_profile(tgds: &[Tgd]) -> (usize, usize) {
    let n = tgds.iter().map(|t| t.universal_count()).max().unwrap_or(0);
    let m = tgds
        .iter()
        .map(|t| t.existential_count())
        .max()
        .unwrap_or(0);
    (n, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::builder()
            .pred("R", 2)
            .pred("S", 2)
            .pred("T", 1)
            .pred("P", 1)
            .build()
    }

    fn atom(s: &Schema, name: &str, vars: &[u32]) -> Atom<Var> {
        Atom::new(
            s.pred_id(name).unwrap(),
            vars.iter().map(|&v| Var(v)).collect(),
        )
    }

    #[test]
    fn renumbering_orders_universals_first() {
        let s = schema();
        // body uses vars 7, 3; head introduces 9 (existential).
        let tgd = Tgd::new(vec![atom(&s, "R", &[7, 3])], vec![atom(&s, "S", &[3, 9])]).unwrap();
        assert_eq!(tgd.universal_count(), 2);
        assert_eq!(tgd.existential_count(), 1);
        assert_eq!(tgd.body()[0].args, vec![Var(0), Var(1)]);
        assert_eq!(tgd.head()[0].args, vec![Var(1), Var(2)]);
        assert!(tgd.is_existential(Var(2)));
        assert!(!tgd.is_existential(Var(1)));
    }

    #[test]
    fn empty_head_rejected() {
        let s = schema();
        let err = Tgd::new(vec![atom(&s, "R", &[0, 1])], vec![]).unwrap_err();
        assert_eq!(err, LogicError::EmptyHead);
    }

    #[test]
    fn variable_free_rejected() {
        // No way to build a variable-free tgd since atoms have positive
        // arity, but an empty body with an empty head must fail.
        let s = schema();
        assert!(Tgd::new(vec![], vec![]).is_err());
        // Empty body with a head is fine; all vars existential.
        let tgd = Tgd::new(vec![], vec![atom(&s, "T", &[0])]).unwrap();
        assert_eq!(tgd.universal_count(), 0);
        assert_eq!(tgd.existential_count(), 1);
        assert!(tgd.is_linear() && tgd.is_guarded() && tgd.is_frontier_guarded());
    }

    #[test]
    fn frontier_and_guards() {
        let s = schema();
        // R(x,y), S(y,z) -> T(x): frontier {x}; frontier-guarded via R(x,y);
        // not guarded (no atom contains x,y,z); not linear; full.
        let tgd = Tgd::new(
            vec![atom(&s, "R", &[0, 1]), atom(&s, "S", &[1, 2])],
            vec![atom(&s, "T", &[0])],
        )
        .unwrap();
        assert_eq!(tgd.frontier(), vec![Var(0)]);
        assert!(tgd.is_full());
        assert!(!tgd.is_linear());
        assert!(!tgd.is_guarded());
        assert!(tgd.is_frontier_guarded());
        assert_eq!(tgd.frontier_guard_index(), Some(0));
        assert_eq!(tgd.guard_index(), None);
        assert_eq!(tgd.class().most_specific(), "frontier-guarded");
    }

    #[test]
    fn guarded_but_not_linear() {
        let s = schema();
        // R(x,y), T(x) -> S(x,y): guard R(x,y).
        let tgd = Tgd::new(
            vec![atom(&s, "R", &[0, 1]), atom(&s, "T", &[0])],
            vec![atom(&s, "S", &[0, 1])],
        )
        .unwrap();
        assert!(tgd.is_guarded());
        assert_eq!(tgd.guard_index(), Some(0));
        assert!(!tgd.is_linear());
        assert!(tgd.is_frontier_guarded());
    }

    #[test]
    fn separation_gadgets_classify_as_in_section_9() {
        let s = Schema::builder()
            .pred("R", 1)
            .pred("P", 1)
            .pred("T", 1)
            .build();
        // Σ_G = { R(x), P(x) -> T(x) } is guarded but not linear (§9.1).
        let sigma_g = Tgd::new(
            vec![atom(&s, "R", &[0]), atom(&s, "P", &[0])],
            vec![atom(&s, "T", &[0])],
        )
        .unwrap();
        assert!(sigma_g.is_guarded());
        assert!(!sigma_g.is_linear());
        // Σ_F = { R(x), P(y) -> T(x) } is frontier-guarded but not guarded.
        let sigma_f = Tgd::new(
            vec![atom(&s, "R", &[0]), atom(&s, "P", &[1])],
            vec![atom(&s, "T", &[0])],
        )
        .unwrap();
        assert!(!sigma_f.is_guarded());
        assert!(sigma_f.is_frontier_guarded());
    }

    #[test]
    fn full_tgd_has_empty_existentials() {
        let s = schema();
        let tgd = Tgd::new(vec![atom(&s, "R", &[0, 1])], vec![atom(&s, "S", &[1, 0])]).unwrap();
        assert!(tgd.is_full());
        assert_eq!(tgd.existential_vars().count(), 0);
        assert_eq!(tgd.universal_vars().count(), 2);
    }

    #[test]
    fn profile_of_set() {
        let s = schema();
        let t1 = Tgd::new(vec![atom(&s, "R", &[0, 1])], vec![atom(&s, "S", &[0, 2])]).unwrap();
        let t2 = Tgd::new(
            vec![atom(&s, "R", &[0, 1]), atom(&s, "S", &[1, 2])],
            vec![atom(&s, "T", &[0])],
        )
        .unwrap();
        assert_eq!(set_profile(&[t1, t2]), (3, 1));
        assert_eq!(set_profile(&[]), (0, 0));
    }

    #[test]
    fn repeated_variables_in_guard() {
        let s = schema();
        // R(x,x) -> T(x): guarded, linear, full.
        let tgd = Tgd::new(vec![atom(&s, "R", &[0, 0])], vec![atom(&s, "T", &[0])]).unwrap();
        assert_eq!(tgd.universal_count(), 1);
        assert!(tgd.is_guarded() && tgd.is_linear() && tgd.is_full());
    }

    #[test]
    fn validate_against_schema() {
        let s = schema();
        let tgd = Tgd::new(vec![atom(&s, "R", &[0, 1])], vec![atom(&s, "T", &[0])]).unwrap();
        assert!(tgd.validate(&s).is_ok());
        let small = Schema::builder().pred("R", 2).build();
        assert!(tgd.validate(&small).is_err());
    }
}
