//! Unions of dependency kinds and validated sets of tgds.

use crate::edd::Edd;
use crate::egd::Egd;
use crate::error::LogicError;
use crate::schema::Schema;
use crate::tgd::{set_profile, Tgd};

/// Any dependency of the paper: a tgd, an egd, or an edd.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dependency {
    /// A tuple-generating dependency.
    Tgd(Tgd),
    /// An equality-generating dependency.
    Egd(Egd),
    /// An existential disjunctive dependency that is neither a tgd nor an
    /// egd (at least two disjuncts).
    Edd(Edd),
}

impl Dependency {
    /// Validates the dependency against `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<(), LogicError> {
        match self {
            Dependency::Tgd(t) => t.validate(schema),
            Dependency::Egd(e) => e.validate(schema),
            Dependency::Edd(e) => e.validate(schema),
        }
    }

    /// Returns the tgd if this is one.
    pub fn as_tgd(&self) -> Option<&Tgd> {
        match self {
            Dependency::Tgd(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the egd if this is one.
    pub fn as_egd(&self) -> Option<&Egd> {
        match self {
            Dependency::Egd(e) => Some(e),
            _ => None,
        }
    }
}

/// A finite set of tgds over a fixed schema — the syntactic form of an
/// ontology specification (paper §2, "Ontologies").
///
/// The set remembers its schema so that downstream layers (instances, chase,
/// locality) can interpret predicate ids without extra plumbing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TgdSet {
    schema: Schema,
    tgds: Vec<Tgd>,
}

impl TgdSet {
    /// Builds a validated set of tgds.
    pub fn new(schema: Schema, tgds: Vec<Tgd>) -> Result<TgdSet, LogicError> {
        for tgd in &tgds {
            tgd.validate(&schema)?;
        }
        Ok(TgdSet { schema, tgds })
    }

    /// The schema the set is over.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The tgds in the set.
    #[inline]
    pub fn tgds(&self) -> &[Tgd] {
        &self.tgds
    }

    /// Number of tgds.
    pub fn len(&self) -> usize {
        self.tgds.len()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tgds.is_empty()
    }

    /// The least `(n, m)` such that this set belongs to `TGD_{n,m}`.
    pub fn profile(&self) -> (usize, usize) {
        set_profile(&self.tgds)
    }

    /// `true` when every tgd is full (`Σ ∈ FTGD`).
    pub fn is_full(&self) -> bool {
        self.tgds.iter().all(Tgd::is_full)
    }

    /// `true` when every tgd is linear (`Σ ∈ LTGD`).
    pub fn is_linear(&self) -> bool {
        self.tgds.iter().all(Tgd::is_linear)
    }

    /// `true` when every tgd is guarded (`Σ ∈ GTGD`).
    pub fn is_guarded(&self) -> bool {
        self.tgds.iter().all(Tgd::is_guarded)
    }

    /// `true` when every tgd is frontier-guarded (`Σ ∈ FGTGD`).
    pub fn is_frontier_guarded(&self) -> bool {
        self.tgds.iter().all(Tgd::is_frontier_guarded)
    }

    /// Iterates over the tgds.
    pub fn iter(&self) -> std::slice::Iter<'_, Tgd> {
        self.tgds.iter()
    }
}

impl<'a> IntoIterator for &'a TgdSet {
    type Item = &'a Tgd;
    type IntoIter = std::slice::Iter<'a, Tgd>;
    fn into_iter(self) -> Self::IntoIter {
        self.tgds.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Var};

    fn schema() -> Schema {
        Schema::builder().pred("R", 2).pred("T", 1).build()
    }

    fn atom(s: &Schema, name: &str, vars: &[u32]) -> Atom<Var> {
        Atom::new(
            s.pred_id(name).unwrap(),
            vars.iter().map(|&v| Var(v)).collect(),
        )
    }

    #[test]
    fn class_predicates_over_set() {
        let s = schema();
        let linear = Tgd::new(vec![atom(&s, "R", &[0, 1])], vec![atom(&s, "T", &[0])]).unwrap();
        let nonlinear = Tgd::new(
            vec![atom(&s, "R", &[0, 1]), atom(&s, "R", &[1, 2])],
            vec![atom(&s, "R", &[0, 2])],
        )
        .unwrap();
        let set = TgdSet::new(s.clone(), vec![linear.clone(), nonlinear]).unwrap();
        assert!(!set.is_linear());
        assert!(set.is_full());
        // The transitivity rule's frontier {x0, x2} is not covered by any
        // single body atom, so the set is not frontier-guarded.
        assert!(!set.is_frontier_guarded());
        assert_eq!(set.profile(), (3, 0));

        let only_linear = TgdSet::new(s, vec![linear]).unwrap();
        assert!(only_linear.is_linear() && only_linear.is_guarded());
    }

    #[test]
    fn validation_rejects_foreign_predicates() {
        let s = schema();
        let tgd = Tgd::new(vec![atom(&s, "R", &[0, 1])], vec![atom(&s, "T", &[0])]).unwrap();
        let wrong = Schema::builder().pred("R", 2).build();
        assert!(TgdSet::new(wrong, vec![tgd]).is_err());
    }

    #[test]
    fn empty_set_profile() {
        let set = TgdSet::new(schema(), vec![]).unwrap();
        assert!(set.is_empty());
        assert_eq!(set.profile(), (0, 0));
        assert!(set.is_full() && set.is_linear() && set.is_guarded());
    }
}
