//! Atoms over a schema, generic in the kind of term filling the positions.

use crate::error::LogicError;
use crate::schema::{PredId, Schema};

/// A variable inside a dependency.
///
/// Variables are dense indices local to a single dependency: a dependency
/// with `k` distinct variables uses exactly `Var(0), ..., Var(k-1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The variable index as a usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An atom `R(t_1, ..., t_k)` whose terms are of type `T`.
///
/// With `T = Var` this is a rule atom (dependencies are constant-free, paper
/// §2); the instance layer uses `Atom<Elem>` for facts and mixed term types
/// for freezing.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom<T> {
    /// Predicate symbol.
    pub pred: PredId,
    /// Argument terms; length must equal the predicate arity.
    pub args: Vec<T>,
}

impl<T> Atom<T> {
    /// Creates an atom.
    pub fn new(pred: PredId, args: Vec<T>) -> Self {
        Atom { pred, args }
    }

    /// Maps the terms of the atom through `f`, keeping the predicate.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Atom<U> {
        Atom {
            pred: self.pred,
            args: self.args.iter().map(f).collect(),
        }
    }

    /// Checks predicate existence and arity against `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<(), LogicError> {
        if self.pred.index() >= schema.len() {
            return Err(LogicError::UnknownPredicate(format!("{:?}", self.pred)));
        }
        let expected = schema.arity(self.pred);
        if self.args.len() != expected {
            return Err(LogicError::ArityMismatch {
                pred: schema.name(self.pred).to_string(),
                expected,
                actual: self.args.len(),
            });
        }
        Ok(())
    }
}

impl Atom<Var> {
    /// Iterates over the variables of the atom (with repetitions).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().copied()
    }

    /// Collects the distinct variables of the atom in order of first
    /// occurrence.
    pub fn distinct_vars(&self) -> Vec<Var> {
        let mut out = Vec::with_capacity(self.args.len());
        for &v in &self.args {
            if !out.contains(&v) {
                out.push(v);
            }
        }
        out
    }

    /// Applies a variable renaming given as a dense table.
    pub fn rename(&self, table: &[Var]) -> Atom<Var> {
        self.map(|v| table[v.index()])
    }
}

/// Collects the distinct variables of a conjunction of atoms, in order of
/// first occurrence.
pub fn conjunction_vars(atoms: &[Atom<Var>]) -> Vec<Var> {
    let mut out = Vec::new();
    for atom in atoms {
        for &v in &atom.args {
            if !out.contains(&v) {
                out.push(v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::builder().pred("R", 2).pred("T", 1).build()
    }

    #[test]
    fn validate_checks_arity() {
        let s = schema();
        let r = s.pred_id("R").unwrap();
        assert!(Atom::new(r, vec![Var(0), Var(1)]).validate(&s).is_ok());
        let bad = Atom::new(r, vec![Var(0)]);
        assert!(matches!(
            bad.validate(&s),
            Err(LogicError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn validate_checks_predicate_bounds() {
        let s = schema();
        let bogus = Atom::new(PredId(9), vec![Var(0)]);
        assert!(matches!(
            bogus.validate(&s),
            Err(LogicError::UnknownPredicate(_))
        ));
    }

    #[test]
    fn distinct_vars_keeps_first_occurrence_order() {
        let s = schema();
        let r = s.pred_id("R").unwrap();
        let a = Atom::new(r, vec![Var(3), Var(3)]);
        assert_eq!(a.distinct_vars(), vec![Var(3)]);
        let b = Atom::new(r, vec![Var(1), Var(0)]);
        assert_eq!(b.distinct_vars(), vec![Var(1), Var(0)]);
    }

    #[test]
    fn conjunction_vars_spans_atoms() {
        let s = schema();
        let r = s.pred_id("R").unwrap();
        let t = s.pred_id("T").unwrap();
        let atoms = vec![
            Atom::new(r, vec![Var(2), Var(0)]),
            Atom::new(t, vec![Var(1)]),
        ];
        assert_eq!(conjunction_vars(&atoms), vec![Var(2), Var(0), Var(1)]);
    }

    #[test]
    fn rename_applies_table() {
        let s = schema();
        let r = s.pred_id("R").unwrap();
        let a = Atom::new(r, vec![Var(0), Var(1)]);
        let renamed = a.rename(&[Var(5), Var(5)]);
        assert_eq!(renamed.args, vec![Var(5), Var(5)]);
    }

    #[test]
    fn map_changes_term_type() {
        let s = schema();
        let r = s.pred_id("R").unwrap();
        let a = Atom::new(r, vec![Var(0), Var(1)]);
        let grounded: Atom<u64> = a.map(|v| v.0 as u64 + 10);
        assert_eq!(grounded.args, vec![10, 11]);
    }
}
