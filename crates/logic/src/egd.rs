//! Equality-generating dependencies (paper §1–§2, §4.1).

use crate::atom::{conjunction_vars, Atom, Var};
use crate::error::LogicError;
use crate::schema::Schema;

/// An equality-generating dependency (egd)
/// `∀x̄ (φ(x̄) → x_i = x_j)` with a non-empty body.
///
/// Invariants maintained by [`Egd::new`]: variables are densely renumbered
/// in order of first body occurrence, the body is non-empty, and both
/// equated variables occur in the body.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Egd {
    body: Vec<Atom<Var>>,
    lhs: Var,
    rhs: Var,
    num_vars: u32,
}

impl Egd {
    /// Builds an egd, renumbering variables densely.
    pub fn new(body: Vec<Atom<Var>>, lhs: Var, rhs: Var) -> Result<Egd, LogicError> {
        if body.is_empty() {
            // An egd with an empty body has no variables to equate.
            return Err(LogicError::NoVariables);
        }
        let order = conjunction_vars(&body);
        let renumber = |v: Var| -> Result<Var, LogicError> {
            order
                .iter()
                .position(|&w| w == v)
                .map(|i| Var(i as u32))
                .ok_or(LogicError::UnsafeEqualityVariable(v))
        };
        let new_body: Vec<Atom<Var>> = body
            .iter()
            .map(|a| a.map(|&v| Var(order.iter().position(|&w| w == v).unwrap() as u32)))
            .collect();
        let lhs = renumber(lhs)?;
        let rhs = renumber(rhs)?;
        Ok(Egd {
            body: new_body,
            lhs,
            rhs,
            num_vars: order.len() as u32,
        })
    }

    /// The body conjunction.
    #[inline]
    pub fn body(&self) -> &[Atom<Var>] {
        &self.body
    }

    /// The left variable of the equality.
    #[inline]
    pub fn lhs(&self) -> Var {
        self.lhs
    }

    /// The right variable of the equality.
    #[inline]
    pub fn rhs(&self) -> Var {
        self.rhs
    }

    /// Number of distinct (universally quantified) variables.
    #[inline]
    pub fn var_count(&self) -> usize {
        self.num_vars as usize
    }

    /// `true` when the equality is trivially satisfied (`x = x`).
    pub fn is_trivial(&self) -> bool {
        self.lhs == self.rhs
    }

    /// Validates all atoms against `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<(), LogicError> {
        for atom in &self.body {
            atom.validate(schema)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::builder().pred("R", 2).build()
    }

    fn r(s: &Schema, a: u32, b: u32) -> Atom<Var> {
        Atom::new(s.pred_id("R").unwrap(), vec![Var(a), Var(b)])
    }

    #[test]
    fn key_constraint() {
        let s = schema();
        // R(x,y), R(x,z) -> y = z.
        let egd = Egd::new(vec![r(&s, 0, 1), r(&s, 0, 2)], Var(1), Var(2)).unwrap();
        assert_eq!(egd.var_count(), 3);
        assert_eq!(egd.lhs(), Var(1));
        assert_eq!(egd.rhs(), Var(2));
        assert!(!egd.is_trivial());
        assert!(egd.validate(&s).is_ok());
    }

    #[test]
    fn renumbering_is_dense() {
        let s = schema();
        let egd = Egd::new(vec![r(&s, 10, 20)], Var(20), Var(10)).unwrap();
        assert_eq!(egd.body()[0].args, vec![Var(0), Var(1)]);
        assert_eq!((egd.lhs(), egd.rhs()), (Var(1), Var(0)));
    }

    #[test]
    fn unsafe_equality_rejected() {
        let s = schema();
        let err = Egd::new(vec![r(&s, 0, 1)], Var(0), Var(5)).unwrap_err();
        assert_eq!(err, LogicError::UnsafeEqualityVariable(Var(5)));
    }

    #[test]
    fn empty_body_rejected() {
        assert!(Egd::new(vec![], Var(0), Var(0)).is_err());
    }

    #[test]
    fn trivial_equality_detected() {
        let s = schema();
        let egd = Egd::new(vec![r(&s, 0, 0)], Var(0), Var(0)).unwrap();
        assert!(egd.is_trivial());
    }
}
