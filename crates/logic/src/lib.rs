//! # tgdkit-logic
//!
//! Syntax layer for tgdkit: relational schemas, atoms, and the dependency
//! languages studied in *Model-theoretic Characterizations of Rule-based
//! Ontologies* (Console, Kolaitis, Pieris; PODS 2021):
//!
//! - **tgds** (tuple-generating dependencies) `φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄)`,
//!   together with the syntactic classes *full*, *linear*, *guarded* and
//!   *frontier-guarded* (paper §2);
//! - **egds** (equality-generating dependencies) `φ(x̄) → x_i = x_j`;
//! - **edds** (existential disjunctive dependencies, paper §4.1) and their
//!   existential-free special case, **dds** (paper Appendix B).
//!
//! The crate also provides a Datalog±-style surface syntax with a
//! span-reporting parser ([`parse`]), pretty printers that round-trip through
//! the parser, and canonicalization utilities used by the candidate
//! enumeration inside the rewriting algorithms of paper §9.
//!
//! Variables are dense per-dependency indices ([`Var`]); predicates are
//! interned in a [`Schema`]. Dependencies are constant-free, exactly as in
//! the paper.

pub mod atom;
pub mod canon;
pub mod dependency;
pub mod display;
pub mod edd;
pub mod egd;
pub mod error;
pub mod normalize;
pub mod parse;
pub mod schema;
pub mod tgd;

pub use atom::{conjunction_vars, Atom, Var};
pub use canon::{
    canonical_tgd, canonical_tgd_with_key, same_up_to_renaming, simplify_tgd, tgd_variant_key,
    TgdVariantKey,
};
pub use dependency::{Dependency, TgdSet};
pub use edd::{Edd, EddDisjunct};
pub use egd::Egd;
pub use error::{LogicError, ParseError};
pub use normalize::{single_head, SingleHead};
pub use parse::{parse_dependencies, parse_program, parse_tgd, parse_tgds, Program};
pub use schema::{PredId, Schema, SchemaBuilder};
pub use tgd::{Tgd, TgdClass};
