//! Error types for the syntax layer.

use std::fmt;

/// An error raised while constructing or validating a dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// A dependency head was empty (the paper requires a non-empty head).
    EmptyHead,
    /// A head variable of a tgd neither occurs in the body nor is
    /// existentially quantified (violated safety).
    UnsafeHeadVariable(crate::Var),
    /// An egd equated a variable that does not occur in its body.
    UnsafeEqualityVariable(crate::Var),
    /// An atom used a predicate with the wrong number of arguments.
    ArityMismatch {
        /// Predicate whose declared arity was violated.
        pred: String,
        /// Arity declared in the schema.
        expected: usize,
        /// Number of arguments supplied.
        actual: usize,
    },
    /// An atom referred to a predicate that is not part of the schema.
    UnknownPredicate(String),
    /// A dependency mentioned no variable at all (the paper stipulates that
    /// a tgd has at least one variable; see §2, footnote 2).
    NoVariables,
    /// A predicate was declared twice with different arities.
    ConflictingArity {
        /// Name of the predicate declared twice.
        pred: String,
        /// Previously declared arity.
        first: usize,
        /// Conflicting arity of the second declaration.
        second: usize,
    },
    /// A predicate arity of zero or an arity beyond the supported maximum.
    InvalidArity(usize),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::EmptyHead => write!(f, "dependency head must be non-empty"),
            LogicError::UnsafeHeadVariable(v) => write!(
                f,
                "head variable {v:?} is marked universal but does not occur in the body"
            ),
            LogicError::UnsafeEqualityVariable(v) => {
                write!(f, "equated variable {v:?} does not occur in the body")
            }
            LogicError::ArityMismatch {
                pred,
                expected,
                actual,
            } => write!(
                f,
                "predicate {pred} has arity {expected} but was used with {actual} arguments"
            ),
            LogicError::UnknownPredicate(p) => write!(f, "unknown predicate {p}"),
            LogicError::NoVariables => write!(f, "a dependency must mention at least one variable"),
            LogicError::ConflictingArity {
                pred,
                first,
                second,
            } => write!(
                f,
                "predicate {pred} declared with conflicting arities {first} and {second}"
            ),
            LogicError::InvalidArity(a) => write!(f, "invalid predicate arity {a}"),
        }
    }
}

impl std::error::Error for LogicError {}

/// A parse error with a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
}

impl ParseError {
    /// Creates a parse error at the given 1-based position.
    pub fn new(message: impl Into<String>, line: usize, column: usize) -> Self {
        ParseError {
            message: message.into(),
            line,
            column,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LogicError> for ParseError {
    fn from(err: LogicError) -> Self {
        ParseError::new(err.to_string(), 0, 0)
    }
}
