//! Pretty printers for dependencies.
//!
//! Atoms store interned predicate ids, so printing needs the schema; the
//! `display` methods return lightweight adapter values implementing
//! [`std::fmt::Display`]. The output round-trips through the parser:
//! `parse_tgd(schema, &tgd.display(schema).to_string())` reproduces the tgd.
//!
//! Naming convention: universal variables print as `x0, x1, ...` and
//! existential variables as `z0, z1, ...`.

use crate::atom::{Atom, Var};
use crate::dependency::Dependency;
use crate::edd::{Edd, EddDisjunct};
use crate::egd::Egd;
use crate::schema::Schema;
use crate::tgd::Tgd;
use std::fmt;

fn var_name(v: Var, universal_count: usize) -> String {
    if v.index() < universal_count {
        format!("x{}", v.index())
    } else {
        format!("z{}", v.index() - universal_count)
    }
}

fn write_atom(
    f: &mut fmt::Formatter<'_>,
    schema: &Schema,
    atom: &Atom<Var>,
    universal_count: usize,
) -> fmt::Result {
    write!(f, "{}(", schema.name(atom.pred))?;
    for (i, &v) in atom.args.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{}", var_name(v, universal_count))?;
    }
    write!(f, ")")
}

fn write_conjunction(
    f: &mut fmt::Formatter<'_>,
    schema: &Schema,
    atoms: &[Atom<Var>],
    universal_count: usize,
) -> fmt::Result {
    for (i, atom) in atoms.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write_atom(f, schema, atom, universal_count)?;
    }
    Ok(())
}

fn write_exists_prefix(
    f: &mut fmt::Formatter<'_>,
    atoms: &[Atom<Var>],
    universal_count: usize,
) -> fmt::Result {
    let mut existentials: Vec<Var> = crate::atom::conjunction_vars(atoms)
        .into_iter()
        .filter(|v| v.index() >= universal_count)
        .collect();
    existentials.sort_unstable();
    if !existentials.is_empty() {
        write!(f, "exists ")?;
        for (i, v) in existentials.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", var_name(*v, universal_count))?;
        }
        write!(f, " : ")?;
    }
    Ok(())
}

/// Display adapter for a [`Tgd`]; see [`Tgd::display`].
pub struct DisplayTgd<'a> {
    schema: &'a Schema,
    tgd: &'a Tgd,
}

impl fmt::Display for DisplayTgd<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.tgd.universal_count();
        if self.tgd.body().is_empty() {
            write!(f, "true")?;
        } else {
            write_conjunction(f, self.schema, self.tgd.body(), n)?;
        }
        write!(f, " -> ")?;
        write_exists_prefix(f, self.tgd.head(), n)?;
        write_conjunction(f, self.schema, self.tgd.head(), n)
    }
}

impl Tgd {
    /// Renders the tgd in the surface syntax, e.g.
    /// `R(x0, x1) -> exists z0 : S(x1, z0)`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DisplayTgd<'a> {
        DisplayTgd { schema, tgd: self }
    }
}

/// Display adapter for an [`Egd`]; see [`Egd::display`].
pub struct DisplayEgd<'a> {
    schema: &'a Schema,
    egd: &'a Egd,
}

impl fmt::Display for DisplayEgd<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.egd.var_count();
        write_conjunction(f, self.schema, self.egd.body(), n)?;
        write!(
            f,
            " -> {} = {}",
            var_name(self.egd.lhs(), n),
            var_name(self.egd.rhs(), n)
        )
    }
}

impl Egd {
    /// Renders the egd in the surface syntax, e.g.
    /// `R(x0, x1), R(x0, x2) -> x1 = x2`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DisplayEgd<'a> {
        DisplayEgd { schema, egd: self }
    }
}

/// Display adapter for an [`Edd`]; see [`Edd::display`].
pub struct DisplayEdd<'a> {
    schema: &'a Schema,
    edd: &'a Edd,
}

impl fmt::Display for DisplayEdd<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.edd.universal_count();
        if self.edd.body().is_empty() {
            write!(f, "true")?;
        } else {
            write_conjunction(f, self.schema, self.edd.body(), n)?;
        }
        write!(f, " -> ")?;
        for (i, d) in self.edd.disjuncts().iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            match d {
                EddDisjunct::Eq(a, b) => {
                    write!(f, "{} = {}", var_name(*a, n), var_name(*b, n))?;
                }
                EddDisjunct::Exists(atoms) => {
                    write_exists_prefix(f, atoms, n)?;
                    write_conjunction(f, self.schema, atoms, n)?;
                }
            }
        }
        Ok(())
    }
}

impl Edd {
    /// Renders the edd in the surface syntax, e.g.
    /// `R(x0, x1) -> x0 = x1 | exists z0 : R(x1, z0)`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DisplayEdd<'a> {
        DisplayEdd { schema, edd: self }
    }
}

/// Display adapter for a [`Dependency`]; see [`Dependency::display`].
pub struct DisplayDependency<'a> {
    schema: &'a Schema,
    dep: &'a Dependency,
}

impl fmt::Display for DisplayDependency<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dep {
            Dependency::Tgd(t) => t.display(self.schema).fmt(f),
            Dependency::Egd(e) => e.display(self.schema).fmt(f),
            Dependency::Edd(e) => e.display(self.schema).fmt(f),
        }
    }
}

impl Dependency {
    /// Renders the dependency in the surface syntax.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DisplayDependency<'a> {
        DisplayDependency { schema, dep: self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::edd::EddDisjunct;

    fn schema() -> Schema {
        Schema::builder().pred("R", 2).pred("T", 1).build()
    }

    fn atom(s: &Schema, name: &str, vars: &[u32]) -> Atom<Var> {
        Atom::new(
            s.pred_id(name).unwrap(),
            vars.iter().map(|&v| Var(v)).collect(),
        )
    }

    #[test]
    fn tgd_rendering() {
        let s = schema();
        let tgd = Tgd::new(
            vec![atom(&s, "R", &[0, 1])],
            vec![atom(&s, "R", &[1, 2]), atom(&s, "T", &[2])],
        )
        .unwrap();
        assert_eq!(
            tgd.display(&s).to_string(),
            "R(x0, x1) -> exists z0 : R(x1, z0), T(z0)"
        );
    }

    #[test]
    fn empty_body_renders_true() {
        let s = schema();
        let tgd = Tgd::new(vec![], vec![atom(&s, "T", &[0])]).unwrap();
        assert_eq!(tgd.display(&s).to_string(), "true -> exists z0 : T(z0)");
    }

    #[test]
    fn full_tgd_has_no_exists_prefix() {
        let s = schema();
        let tgd = Tgd::new(vec![atom(&s, "R", &[0, 1])], vec![atom(&s, "R", &[1, 0])]).unwrap();
        assert_eq!(tgd.display(&s).to_string(), "R(x0, x1) -> R(x1, x0)");
    }

    #[test]
    fn egd_rendering() {
        let s = schema();
        let egd = Egd::new(
            vec![atom(&s, "R", &[0, 1]), atom(&s, "R", &[0, 2])],
            Var(1),
            Var(2),
        )
        .unwrap();
        assert_eq!(
            egd.display(&s).to_string(),
            "R(x0, x1), R(x0, x2) -> x1 = x2"
        );
    }

    #[test]
    fn edd_rendering() {
        let s = schema();
        let edd = Edd::new(
            vec![atom(&s, "R", &[0, 1])],
            vec![
                EddDisjunct::Eq(Var(0), Var(1)),
                EddDisjunct::Exists(vec![atom(&s, "R", &[1, 5])]),
            ],
        )
        .unwrap();
        assert_eq!(
            edd.display(&s).to_string(),
            "R(x0, x1) -> x0 = x1 | exists z0 : R(x1, z0)"
        );
    }
}
