//! Parser for the Datalog±-style surface syntax.
//!
//! Grammar (informal):
//!
//! ```text
//! program    := item*
//! item       := schema-decl | dependency "."
//! schema-decl:= "schema" "{" pred-decl ("," pred-decl)* "}"
//! pred-decl  := IDENT "/" NAT
//! dependency := body "->" rhs
//! body       := "true" | atoms | ε        (ε only when followed by "->")
//! atoms      := atom ("," atom)*
//! atom       := IDENT "(" IDENT ("," IDENT)* ")"
//! rhs        := disjunct ("|" disjunct)*
//! disjunct   := IDENT "=" IDENT
//!             | ("exists" IDENT ("," IDENT)* ":")? atoms
//! ```
//!
//! Comments run from `//` to end of line. Identifiers match
//! `[A-Za-z_][A-Za-z0-9_']*`. Predicates not declared in a `schema` block
//! are added to the schema with the arity of their first use; later uses
//! with a different arity are errors.
//!
//! ```
//! use tgdkit_logic::{parse_program, Dependency};
//! let program = parse_program(
//!     "schema { R/2, T/1 }
//!      R(x,y) -> exists z : R(y,z).
//!      R(x,y) -> x = y | T(x).",
//! ).unwrap();
//! assert_eq!(program.schema.len(), 2);
//! assert_eq!(program.dependencies.len(), 2);
//! assert!(matches!(program.dependencies[0], Dependency::Tgd(_)));
//! assert!(matches!(program.dependencies[1], Dependency::Edd(_)));
//! ```

// Malformed input must surface as `ParseError`, never as a panic (tests may
// still unwrap known-good fixtures).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use crate::atom::{Atom, Var};
use crate::dependency::Dependency;
use crate::edd::{Edd, EddDisjunct};
use crate::egd::Egd;
use crate::error::{LogicError, ParseError};
use crate::schema::Schema;
use crate::tgd::Tgd;
use std::collections::HashMap;

/// A parsed program: the (possibly inferred) schema and the dependencies.
#[derive(Debug, Clone)]
pub struct Program {
    /// Schema declared by `schema { ... }` blocks and/or inferred from use.
    pub schema: Schema,
    /// Parsed dependencies in source order.
    pub dependencies: Vec<Dependency>,
}

impl Program {
    /// The tgds of the program, in source order, ignoring egds/edds.
    pub fn tgds(&self) -> Vec<Tgd> {
        self.dependencies
            .iter()
            .filter_map(|d| d.as_tgd().cloned())
            .collect()
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Nat(usize),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Arrow,
    Pipe,
    Eq,
    Slash,
    Colon,
    Dot,
    Eof,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    column: usize,
}

fn lex(text: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    let mut line = 1usize;
    let mut column = 1usize;
    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            out.push(Spanned {
                tok: $tok,
                line,
                column,
            });
            column += $len;
        }};
    }
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                chars.next();
                line += 1;
                column = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                column += 1;
            }
            '/' => {
                // Either a comment `//...` or the arity separator `/`.
                let start_col = column;
                chars.next();
                column += 1;
                if chars.peek() == Some(&'/') {
                    while let Some(&c2) = chars.peek() {
                        if c2 == '\n' {
                            break;
                        }
                        chars.next();
                        column += 1;
                    }
                } else {
                    out.push(Spanned {
                        tok: Tok::Slash,
                        line,
                        column: start_col,
                    });
                }
            }
            '(' => {
                chars.next();
                push!(Tok::LParen, 1);
            }
            ')' => {
                chars.next();
                push!(Tok::RParen, 1);
            }
            '{' => {
                chars.next();
                push!(Tok::LBrace, 1);
            }
            '}' => {
                chars.next();
                push!(Tok::RBrace, 1);
            }
            ',' => {
                chars.next();
                push!(Tok::Comma, 1);
            }
            '|' => {
                chars.next();
                push!(Tok::Pipe, 1);
            }
            '=' => {
                chars.next();
                push!(Tok::Eq, 1);
            }
            ':' => {
                chars.next();
                push!(Tok::Colon, 1);
            }
            '.' => {
                chars.next();
                push!(Tok::Dot, 1);
            }
            '-' => {
                chars.next();
                column += 1;
                if chars.peek() == Some(&'>') {
                    chars.next();
                    out.push(Spanned {
                        tok: Tok::Arrow,
                        line,
                        column: column - 1,
                    });
                    column += 1;
                } else {
                    return Err(ParseError::new("expected '->' after '-'", line, column - 1));
                }
            }
            c if c.is_ascii_digit() => {
                let start_col = column;
                let mut n = 0usize;
                while let Some(&d) = chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        n = n * 10 + digit as usize;
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Nat(n),
                    line,
                    column: start_col,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start_col = column;
                let mut ident = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '\'' {
                        ident.push(d);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Ident(ident),
                    line,
                    column: start_col,
                });
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character {other:?}"),
                    line,
                    column,
                ));
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        column,
    });
    Ok(out)
}

struct Parser<'s> {
    toks: Vec<Spanned>,
    pos: usize,
    schema: &'s mut Schema,
}

/// An atom whose argument terms are still variable *names*.
type RawAtom = (crate::schema::PredId, Vec<String>);

#[derive(Debug)]
enum RawDisjunct {
    Eq(String, String),
    Exists(Vec<String>, Vec<RawAtom>),
}

impl<'s> Parser<'s> {
    fn peek(&self) -> &Spanned {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Spanned {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError::new(msg, t.line, t.column)
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if self.peek().tok == tok {
            self.next();
            Ok(())
        } else {
            Err(self.err_here(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().tok.clone() {
            Tok::Ident(name) => {
                self.next();
                Ok(name)
            }
            _ => Err(self.err_here(format!("expected {what}"))),
        }
    }

    fn schema_decl(&mut self) -> Result<(), ParseError> {
        // "schema" already consumed by caller.
        self.expect(Tok::LBrace, "'{'")?;
        loop {
            let (line, column) = {
                let t = self.peek();
                (t.line, t.column)
            };
            let name = self.ident("predicate name")?;
            self.expect(Tok::Slash, "'/' and arity")?;
            let arity = match self.peek().tok {
                Tok::Nat(n) => {
                    self.next();
                    n
                }
                _ => return Err(self.err_here("expected arity")),
            };
            self.schema
                .add_pred(&name, arity)
                .map_err(|e| ParseError::new(e.to_string(), line, column))?;
            match self.peek().tok {
                Tok::Comma => {
                    self.next();
                }
                Tok::RBrace => {
                    self.next();
                    return Ok(());
                }
                _ => return Err(self.err_here("expected ',' or '}'")),
            }
        }
    }

    fn atom(&mut self) -> Result<RawAtom, ParseError> {
        let (line, column) = {
            let t = self.peek();
            (t.line, t.column)
        };
        let name = self.ident("predicate name")?;
        self.expect(Tok::LParen, "'('")?;
        let mut args = Vec::new();
        if self.peek().tok == Tok::RParen {
            // 0-ary atom `Aux()`.
            self.next();
        } else {
            loop {
                args.push(self.ident("variable name")?);
                match self.peek().tok {
                    Tok::Comma => {
                        self.next();
                    }
                    Tok::RParen => {
                        self.next();
                        break;
                    }
                    _ => return Err(self.err_here("expected ',' or ')'")),
                }
            }
        }
        let pred = self
            .schema
            .add_pred(&name, args.len())
            .map_err(|e| ParseError::new(e.to_string(), line, column))?;
        Ok((pred, args))
    }

    fn atoms(&mut self) -> Result<Vec<RawAtom>, ParseError> {
        let mut atoms = vec![self.atom()?];
        while self.peek().tok == Tok::Comma {
            self.next();
            atoms.push(self.atom()?);
        }
        Ok(atoms)
    }

    /// Parses one disjunct of the right-hand side.
    fn disjunct(&mut self) -> Result<RawDisjunct, ParseError> {
        // Equality: IDENT '=' IDENT (the next token after an identifier
        // decides).
        if let Tok::Ident(first) = self.peek().tok.clone() {
            if first == "exists" {
                self.next();
                let mut bound = vec![self.ident("existential variable")?];
                while self.peek().tok == Tok::Comma {
                    self.next();
                    bound.push(self.ident("existential variable")?);
                }
                self.expect(Tok::Colon, "':' after existential variables")?;
                let atoms = self.atoms()?;
                return Ok(RawDisjunct::Exists(bound, atoms));
            }
            if self.toks[self.pos + 1].tok == Tok::Eq {
                self.next();
                self.next();
                let rhs = self.ident("variable after '='")?;
                return Ok(RawDisjunct::Eq(first, rhs));
            }
        }
        let atoms = self.atoms()?;
        Ok(RawDisjunct::Exists(Vec::new(), atoms))
    }

    fn dependency(&mut self) -> Result<Dependency, ParseError> {
        let start = self.peek().clone();
        // Body: "true", ε (when the next token is "->"), or a conjunction.
        let body: Vec<RawAtom> = match &self.peek().tok {
            Tok::Arrow => Vec::new(),
            Tok::Ident(name) if name == "true" => {
                self.next();
                Vec::new()
            }
            _ => self.atoms()?,
        };
        self.expect(Tok::Arrow, "'->'")?;
        let mut disjuncts = vec![self.disjunct()?];
        while self.peek().tok == Tok::Pipe {
            self.next();
            disjuncts.push(self.disjunct()?);
        }
        build_dependency(body, disjuncts)
            .map_err(|e| ParseError::new(e.to_string(), start.line, start.column))
    }

    fn program(&mut self) -> Result<Vec<Dependency>, ParseError> {
        let mut deps = Vec::new();
        loop {
            match self.peek().tok.clone() {
                Tok::Eof => return Ok(deps),
                Tok::Ident(name) if name == "schema" => {
                    self.next();
                    self.schema_decl()?;
                }
                Tok::Dot => {
                    // Stray terminator; skip.
                    self.next();
                }
                _ => {
                    deps.push(self.dependency()?);
                    match self.peek().tok {
                        Tok::Dot => {
                            self.next();
                        }
                        Tok::Eof => {}
                        _ => return Err(self.err_here("expected '.' after dependency")),
                    }
                }
            }
        }
    }
}

/// Builds the typed dependency from raw named atoms, assigning dense
/// variable indices per dependency (body variables first, then per-disjunct
/// existential variables).
fn build_dependency(
    body: Vec<RawAtom>,
    disjuncts: Vec<RawDisjunct>,
) -> Result<Dependency, LogicError> {
    let mut names: HashMap<String, Var> = HashMap::new();
    let var_of = |names: &mut HashMap<String, Var>, name: &str| -> Var {
        let next = Var(names.len() as u32);
        *names.entry(name.to_string()).or_insert(next)
    };
    let body_atoms: Vec<Atom<Var>> = body
        .iter()
        .map(|(pred, args)| Atom::new(*pred, args.iter().map(|a| var_of(&mut names, a)).collect()))
        .collect();
    let body_vars: HashMap<String, Var> = names.clone();

    // Explicitly declared existentials must not clash with body variables;
    // undeclared head-only variables are implicitly existential (tgd
    // convention) but are an error inside multi-disjunct edds unless they
    // are declared, to avoid silent scoping surprises.
    let single = disjuncts.len() == 1;
    let mut typed: Vec<EddDisjunct> = Vec::with_capacity(disjuncts.len());
    for d in disjuncts {
        match d {
            RawDisjunct::Eq(a, b) => {
                let va = *body_vars
                    .get(&a)
                    .ok_or(LogicError::UnsafeEqualityVariable(Var(u32::MAX)))?;
                let vb = *body_vars
                    .get(&b)
                    .ok_or(LogicError::UnsafeEqualityVariable(Var(u32::MAX)))?;
                typed.push(EddDisjunct::Eq(va, vb));
            }
            RawDisjunct::Exists(bound, atoms) => {
                // Per-disjunct scope: body vars plus this disjunct's locals.
                let mut local: HashMap<String, Var> = body_vars.clone();
                let mut next = body_vars.len() as u32;
                for b in &bound {
                    if !local.contains_key(b) {
                        local.insert(b.clone(), Var(next));
                        next += 1;
                    }
                }
                let mut typed_atoms = Vec::with_capacity(atoms.len());
                for (pred, args) in &atoms {
                    let mut vars = Vec::with_capacity(args.len());
                    for a in args {
                        if let Some(&v) = local.get(a) {
                            vars.push(v);
                        } else if single {
                            // Implicit existential in plain tgd syntax.
                            local.insert(a.clone(), Var(next));
                            vars.push(Var(next));
                            next += 1;
                        } else {
                            return Err(LogicError::UnsafeHeadVariable(Var(u32::MAX)));
                        }
                    }
                    typed_atoms.push(Atom::new(*pred, vars));
                }
                typed.push(EddDisjunct::Exists(typed_atoms));
            }
        }
    }

    // Classify: one disjunct -> tgd or egd; otherwise edd.
    if single {
        match typed.pop() {
            Some(EddDisjunct::Eq(a, b)) => Ok(Dependency::Egd(Egd::new(body_atoms, a, b)?)),
            Some(EddDisjunct::Exists(atoms)) => Ok(Dependency::Tgd(Tgd::new(body_atoms, atoms)?)),
            // `single` promises exactly one disjunct; surface a malformed
            // dependency instead of panicking if that invariant ever breaks.
            None => Err(LogicError::EmptyHead),
        }
    } else {
        Ok(Dependency::Edd(Edd::new(body_atoms, typed)?))
    }
}

/// Parses a whole program (schema declarations plus `.`-terminated
/// dependencies).
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut schema = Schema::default();
    let toks = lex(text)?;
    let mut parser = Parser {
        toks,
        pos: 0,
        schema: &mut schema,
    };
    let dependencies = parser.program()?;
    Ok(Program {
        schema,
        dependencies,
    })
}

/// Parses a sequence of dependencies against (and extending) `schema`.
pub fn parse_dependencies(schema: &mut Schema, text: &str) -> Result<Vec<Dependency>, ParseError> {
    let toks = lex(text)?;
    let mut parser = Parser {
        toks,
        pos: 0,
        schema,
    };
    parser.program()
}

/// Parses a single tgd against (and extending) `schema`.
pub fn parse_tgd(schema: &mut Schema, text: &str) -> Result<Tgd, ParseError> {
    let deps = parse_dependencies(schema, text)?;
    match deps.as_slice() {
        [Dependency::Tgd(t)] => Ok(t.clone()),
        [other] => Err(ParseError::new(
            format!("expected a tgd, found {:?}", kind_name(other)),
            1,
            1,
        )),
        _ => Err(ParseError::new(
            format!(
                "expected exactly one tgd, found {} dependencies",
                deps.len()
            ),
            1,
            1,
        )),
    }
}

/// Parses a sequence of tgds against (and extending) `schema`; errors if any
/// dependency is not a tgd.
pub fn parse_tgds(schema: &mut Schema, text: &str) -> Result<Vec<Tgd>, ParseError> {
    let deps = parse_dependencies(schema, text)?;
    deps.into_iter()
        .map(|d| match d {
            Dependency::Tgd(t) => Ok(t),
            other => Err(ParseError::new(
                format!("expected only tgds, found {}", kind_name(&other)),
                1,
                1,
            )),
        })
        .collect()
}

fn kind_name(dep: &Dependency) -> &'static str {
    match dep {
        Dependency::Tgd(_) => "tgd",
        Dependency::Egd(_) => "egd",
        Dependency::Edd(_) => "edd",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_tgd() {
        let mut schema = Schema::default();
        let tgd = parse_tgd(&mut schema, "R(x,y) -> exists z : S(y,z)").unwrap();
        assert_eq!(tgd.universal_count(), 2);
        assert_eq!(tgd.existential_count(), 1);
        assert_eq!(schema.len(), 2);
        assert_eq!(schema.arity(schema.pred_id("R").unwrap()), 2);
    }

    #[test]
    fn implicit_existentials_in_tgd() {
        let mut schema = Schema::default();
        // z never declared: implicitly existential in single-head syntax.
        let tgd = parse_tgd(&mut schema, "R(x,y) -> S(y,z)").unwrap();
        assert_eq!(tgd.existential_count(), 1);
    }

    #[test]
    fn parse_full_tgd_and_classes() {
        let mut schema = Schema::default();
        let tgd = parse_tgd(&mut schema, "R(x,y), S(y,z) -> T(x,z)").unwrap();
        assert!(tgd.is_full());
        assert!(!tgd.is_guarded());
        // Frontier {x, z} spans two body atoms: not frontier-guarded.
        assert!(!tgd.is_frontier_guarded());
        let fg = parse_tgd(&mut schema, "R(x,y), S(y,z) -> T(x,x)").unwrap();
        assert!(fg.is_frontier_guarded());
    }

    #[test]
    fn parse_empty_body() {
        let mut schema = Schema::default();
        let t1 = parse_tgd(&mut schema, "true -> exists x : P(x)").unwrap();
        assert_eq!(t1.universal_count(), 0);
        let t2 = parse_tgd(&mut schema, "-> exists x : P(x)").unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn parse_egd() {
        let mut schema = Schema::default();
        let deps = parse_dependencies(&mut schema, "R(x,y), R(x,z) -> y = z.").unwrap();
        assert!(matches!(deps.as_slice(), [Dependency::Egd(_)]));
    }

    #[test]
    fn parse_edd() {
        let mut schema = Schema::default();
        let deps =
            parse_dependencies(&mut schema, "R(x,y) -> x = y | exists z : R(y,z) | T(x).").unwrap();
        match deps.as_slice() {
            [Dependency::Edd(edd)] => {
                assert_eq!(edd.disjuncts().len(), 3);
                assert_eq!(edd.universal_count(), 2);
            }
            other => panic!("expected edd, got {other:?}"),
        }
    }

    #[test]
    fn undeclared_existential_in_edd_is_error() {
        let mut schema = Schema::default();
        let res = parse_dependencies(&mut schema, "R(x,y) -> S(y,z) | T(x).");
        assert!(res.is_err());
    }

    #[test]
    fn schema_block_and_arity_check() {
        let program = parse_program("schema { R/2 }  R(x,y) -> R(y,x).").unwrap();
        assert_eq!(program.schema.len(), 1);
        // Arity violation against the declared schema is a parse error.
        assert!(parse_program("schema { R/2 }  R(x) -> R(x,x).").is_err());
    }

    #[test]
    fn multiple_rules_require_terminators() {
        let mut schema = Schema::default();
        let tgds = parse_tgds(&mut schema, "R(x,y) -> R(y,x). R(x,y) -> T(x).").unwrap();
        assert_eq!(tgds.len(), 2);
        assert!(parse_tgds(&mut schema, "R(x,y) -> R(y,x) R(x,y) -> T(x)").is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let mut schema = Schema::default();
        let tgds = parse_tgds(
            &mut schema,
            "// transitive closure step\nE(x,y), E(y,z) -> E(x,z). // full tgd",
        )
        .unwrap();
        assert_eq!(tgds.len(), 1);
        assert!(tgds[0].is_full());
    }

    #[test]
    fn error_positions_are_reported() {
        let mut schema = Schema::default();
        let err = parse_tgds(&mut schema, "R(x,y) ->").unwrap_err();
        assert_eq!(err.line, 1);
        let err2 = parse_tgds(&mut schema, "R(x,\n  %").unwrap_err();
        assert_eq!(err2.line, 2);
    }

    #[test]
    fn parse_tgd_rejects_egd() {
        let mut schema = Schema::default();
        assert!(parse_tgd(&mut schema, "R(x,y) -> x = y").is_err());
    }

    #[test]
    fn roundtrip_through_display() {
        let mut schema = Schema::default();
        let texts = [
            "R(x,y), S(y,z) -> T(x,z)",
            "R(x,y) -> exists z : S(y,z), T(y,z)",
            "true -> exists x : P(x)",
            "R(x,x) -> T(x,x)",
        ];
        for text in texts {
            let tgd = parse_tgd(&mut schema, text).unwrap();
            let rendered = tgd.display(&schema).to_string();
            let reparsed = parse_tgd(&mut schema, &rendered).unwrap();
            assert_eq!(tgd, reparsed, "roundtrip failed for {text}");
        }
    }

    #[test]
    fn equality_with_unknown_variable_is_error() {
        let mut schema = Schema::default();
        assert!(parse_dependencies(&mut schema, "R(x,y) -> x = w.").is_err());
    }

    #[test]
    fn exists_sharing_body_variable_names_is_shadowed() {
        let mut schema = Schema::default();
        // "exists y" where y is also a body variable: the declaration refers
        // to the body variable (no shadowing is introduced); the head reuses
        // the body's y.
        let tgd = parse_tgd(&mut schema, "R(x,y) -> exists y : S(x,y)").unwrap();
        assert_eq!(tgd.existential_count(), 0);
    }
}
