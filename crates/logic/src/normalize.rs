//! Normal forms for tgd sets.
//!
//! [`single_head`] rewrites a set into **single-atom-head normal form**: a
//! tgd `φ(x̄,ȳ) → ∃z̄ (α₁ ∧ … ∧ α_k)` with `k > 1` becomes
//!
//! ```text
//! φ(x̄,ȳ)      → ∃z̄ Auxᵢ(x̄', z̄)      (x̄' = the head's frontier)
//! Auxᵢ(x̄',z̄) → αⱼ                    (one per head atom)
//! ```
//!
//! over a schema extended with one fresh predicate per rewritten rule. The
//! transformation is a *conservative extension*: models of the normalized
//! set restricted to the original schema are exactly the models of the
//! original set expanded with (some) `Auxᵢ` facts, so certain answers and
//! entailment of original-schema tgds are preserved. It does **not**
//! preserve membership in the syntactic classes in general (the `Auxᵢ` atom
//! guards its rule, so guarded/linear inputs stay guarded/linear; full
//! inputs stay full).
//!
//! Single-head form is the standard preprocessing step for chase engines
//! and rewriting systems; tgdkit itself handles multi-atom heads natively,
//! so this module exists for interoperability and for testing the engine
//! against normalized variants.

use crate::atom::{conjunction_vars, Atom, Var};
use crate::dependency::TgdSet;
use crate::error::LogicError;
use crate::tgd::Tgd;

/// The result of single-head normalization.
#[derive(Debug, Clone)]
pub struct SingleHead {
    /// The normalized set, over the extended schema.
    pub set: TgdSet,
    /// Names of the auxiliary predicates introduced (empty if the input was
    /// already in single-head form).
    pub auxiliaries: Vec<String>,
}

/// Rewrites `set` into single-atom-head normal form (see the module docs).
pub fn single_head(set: &TgdSet) -> Result<SingleHead, LogicError> {
    let mut schema = set.schema().clone();
    let mut out: Vec<Tgd> = Vec::new();
    let mut auxiliaries = Vec::new();
    let mut counter = 0usize;
    for tgd in set.tgds() {
        if tgd.head().len() <= 1 {
            out.push(tgd.clone());
            continue;
        }
        // The auxiliary predicate carries the head's frontier plus the
        // existential variables, in ascending order.
        let mut carried: Vec<Var> = conjunction_vars(tgd.head());
        carried.sort_unstable();
        carried.dedup();
        let aux_name = loop {
            let candidate = format!("HeadAux{counter}");
            counter += 1;
            if schema.pred_id(&candidate).is_none() {
                break candidate;
            }
        };
        let aux = schema.add_pred(&aux_name, carried.len())?;
        auxiliaries.push(aux_name);
        // φ → ∃z̄ Aux(carried).
        out.push(Tgd::new(
            tgd.body().to_vec(),
            vec![Atom::new(aux, carried.clone())],
        )?);
        // Aux(carried) → αⱼ for each head atom.
        for atom in tgd.head() {
            out.push(Tgd::new(
                vec![Atom::new(aux, carried.clone())],
                vec![atom.clone()],
            )?);
        }
    }
    Ok(SingleHead {
        set: TgdSet::new(schema, out)?,
        auxiliaries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_tgds;
    use crate::schema::Schema;

    fn set(text: &str) -> TgdSet {
        let mut schema = Schema::default();
        let tgds = parse_tgds(&mut schema, text).unwrap();
        TgdSet::new(schema, tgds).unwrap()
    }

    #[test]
    fn single_head_inputs_pass_through() {
        let s = set("R(x,y) -> exists z : S(y,z). P(x) -> Q(x).");
        let normalized = single_head(&s).unwrap();
        assert!(normalized.auxiliaries.is_empty());
        assert_eq!(normalized.set.tgds(), s.tgds());
    }

    #[test]
    fn multi_head_rules_are_split() {
        let s = set("P(x) -> exists z : R(x,z), S(z,x).");
        let normalized = single_head(&s).unwrap();
        assert_eq!(normalized.auxiliaries.len(), 1);
        assert_eq!(normalized.set.len(), 3); // φ→Aux + 2 projections
        assert!(normalized.set.tgds().iter().all(|t| t.head().len() == 1));
        // The auxiliary carries x and z.
        let aux = normalized.set.schema().pred_id("HeadAux0").unwrap();
        assert_eq!(normalized.set.schema().arity(aux), 2);
    }

    #[test]
    fn class_preservation() {
        // Guarded input stays guarded; linear stays linear; full stays full.
        let guarded = set("G(x,y), P(x) -> exists z : R(x,z), S(z,y).");
        let ng = single_head(&guarded).unwrap();
        assert!(ng.set.is_guarded());

        let linear = set("G(x,y) -> exists z : R(x,z), S(z,y).");
        let nl = single_head(&linear).unwrap();
        assert!(nl.set.is_linear());

        let full = set("G(x,y), G(y,z) -> R(x,y), R(y,z).");
        let nf = single_head(&full).unwrap();
        assert!(nf.set.is_full());
    }

    #[test]
    fn normalization_shape() {
        // The semantic conservative-extension check lives in
        // tests/extensions.rs (normalization_preserves_entailment /
        // _certain_answers); here check the structural shape.
        let s = set("P(x) -> exists z, w : R(x,z), S(z,w).");
        let normalized = single_head(&s).unwrap();
        let intro = &normalized.set.tgds()[0];
        assert_eq!(intro.existential_count(), 2);
        for projection in &normalized.set.tgds()[1..] {
            assert!(projection.is_full());
            assert_eq!(projection.body().len(), 1);
        }
    }

    #[test]
    fn aux_names_avoid_collisions() {
        let s = set("HeadAux0(x) -> exists z : R(x,z), S(x,z).");
        let normalized = single_head(&s).unwrap();
        assert_eq!(normalized.auxiliaries, vec!["HeadAux1".to_string()]);
    }
}
