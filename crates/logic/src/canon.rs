//! Canonicalization of tgds up to variable renaming and atom reordering.
//!
//! The rewriting algorithms of paper §9 enumerate candidate tgds and must
//! deduplicate them modulo renaming of variables and reordering of atoms
//! within the body/head conjunctions. [`canonical_tgd`] computes a canonical
//! representative by searching for the lexicographically least encoding over
//! all atom orderings (with variables renamed by first occurrence);
//! [`tgd_variant_key`] exposes that encoding as a hashable key.
//!
//! For dependencies with more than [`EXACT_LIMIT`] atoms per conjunction the
//! exhaustive search is replaced by a deterministic greedy pass; in that
//! regime two renaming-variants may receive different keys (dedup then keeps
//! both — harmless for correctness, only costing duplicate work downstream).

use crate::atom::{Atom, Var};
use crate::tgd::Tgd;

/// Maximum conjunction size for which the canonical search is exhaustive.
pub const EXACT_LIMIT: usize = 7;

/// A hashable key identifying a tgd up to variable renaming and atom
/// reordering (exactly, for conjunctions of at most [`EXACT_LIMIT`] atoms).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TgdVariantKey(Vec<u32>);

const SEP: u32 = u32::MAX;

impl TgdVariantKey {
    /// The body segment of the encoded sequence (everything before the
    /// body/head separator). The canonical body atoms are reconstructible
    /// from this prefix, so two keys share a body prefix iff the canonical
    /// bodies coincide — body-grouped evaluation keys its groups by it.
    pub fn body_prefix(&self) -> &[u32] {
        let sep = self
            .0
            .iter()
            .position(|&w| w == SEP)
            .expect("encoded key always contains the body/head separator");
        &self.0[..sep]
    }

    /// Number of `u32` words in the encoded canonical sequence. Used by the
    /// bounded entailment cache to estimate per-key residency.
    pub fn encoded_len(&self) -> usize {
        self.0.len()
    }
}

/// State of the encoding search: atom order chosen so far and the variable
/// renaming induced by first occurrence.
#[derive(Clone)]
struct SearchState {
    /// Renaming: original var index -> canonical id (u32::MAX = unassigned).
    renaming: Vec<u32>,
    assigned: u32,
    seq: Vec<u32>,
    body_order: Vec<usize>,
    head_order: Vec<usize>,
}

fn encode_atom(atom: &Atom<Var>, renaming: &mut [u32], assigned: &mut u32, seq: &mut Vec<u32>) {
    seq.push(atom.pred.0);
    for &v in &atom.args {
        let slot = &mut renaming[v.index()];
        if *slot == u32::MAX {
            *slot = *assigned;
            *assigned += 1;
        }
        seq.push(*slot);
    }
}

/// Exhaustive branch-and-bound over atom orderings, minimizing the encoded
/// sequence. `stage` 0 = choosing body atoms, 1 = head atoms.
struct Canonicalizer<'a> {
    body: &'a [Atom<Var>],
    head: &'a [Atom<Var>],
    num_vars: usize,
    best: Option<SearchState>,
}

impl<'a> Canonicalizer<'a> {
    fn run(mut self) -> SearchState {
        let init = SearchState {
            renaming: vec![u32::MAX; self.num_vars],
            assigned: 0,
            seq: Vec::new(),
            body_order: Vec::new(),
            head_order: Vec::new(),
        };
        self.extend(init, 0);
        self.best.expect("canonicalization always finds a state")
    }

    fn extend(&mut self, state: SearchState, stage: usize) {
        let atoms = if stage == 0 { self.body } else { self.head };
        let chosen = if stage == 0 {
            &state.body_order
        } else {
            &state.head_order
        };
        if chosen.len() == atoms.len() {
            if stage == 0 {
                let mut next = state;
                next.seq.push(SEP);
                self.extend(next, 1);
            } else {
                match &self.best {
                    Some(b) if b.seq <= state.seq => {}
                    _ => self.best = Some(state),
                }
            }
            return;
        }
        // Candidate next atoms: those minimizing the next encoded block.
        let mut best_block: Option<Vec<u32>> = None;
        let mut candidates: Vec<(usize, Vec<u32>, SearchState)> = Vec::new();
        for (i, atom) in atoms.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            let mut st = state.clone();
            let mut block = Vec::with_capacity(atom.args.len() + 1);
            encode_atom(atom, &mut st.renaming, &mut st.assigned, &mut block);
            match &best_block {
                Some(b) if *b < block => continue,
                Some(b) if *b == block => {}
                _ => {
                    best_block = Some(block.clone());
                    candidates.retain(|(_, blk, _)| *blk <= block);
                }
            }
            candidates.push((i, block, st));
        }
        let best_block = best_block.expect("at least one remaining atom");
        for (i, block, mut st) in candidates {
            if block != best_block {
                continue;
            }
            st.seq.extend_from_slice(&block);
            if stage == 0 {
                st.body_order.push(i);
            } else {
                st.head_order.push(i);
            }
            // Prune against the best complete sequence found so far.
            if let Some(b) = &self.best {
                if b.seq.len() >= st.seq.len() && b.seq[..st.seq.len()] < st.seq[..] {
                    continue;
                }
            }
            self.extend(st, stage);
        }
    }
}

/// Deterministic greedy ordering used beyond [`EXACT_LIMIT`].
fn greedy_state(tgd: &Tgd) -> SearchState {
    let mut st = SearchState {
        renaming: vec![u32::MAX; tgd.var_count()],
        assigned: 0,
        seq: Vec::new(),
        body_order: Vec::new(),
        head_order: Vec::new(),
    };
    for (stage, atoms) in [(0, tgd.body()), (1, tgd.head())] {
        let mut remaining: Vec<usize> = (0..atoms.len()).collect();
        while !remaining.is_empty() {
            let mut best: Option<(usize, Vec<u32>)> = None;
            for &i in &remaining {
                let mut renaming = st.renaming.clone();
                let mut assigned = st.assigned;
                let mut block = Vec::new();
                encode_atom(&atoms[i], &mut renaming, &mut assigned, &mut block);
                if best.as_ref().is_none_or(|(_, b)| block < *b) {
                    best = Some((i, block));
                }
            }
            let (i, _) = best.unwrap();
            encode_atom(&atoms[i], &mut st.renaming, &mut st.assigned, &mut st.seq);
            if stage == 0 {
                st.body_order.push(i);
            } else {
                st.head_order.push(i);
            }
            remaining.retain(|&j| j != i);
        }
        if stage == 0 {
            st.seq.push(SEP);
        }
    }
    st
}

/// Conjunction size up to which [`canonical_state_small`] enumerates every
/// ordering directly (at most 6 x 6 encodings) instead of running the
/// branch-and-bound search. The two produce the same minimal sequence; the
/// direct loop reuses scratch buffers where the search clones its state per
/// branch, which matters on the candidate-dedup hot path (Algorithm 1
/// candidates rarely exceed two body atoms).
const SMALL_LIMIT: usize = 3;

fn small_perms(n: usize) -> &'static [&'static [usize]] {
    const P0: &[&[usize]] = &[&[]];
    const P1: &[&[usize]] = &[&[0]];
    const P2: &[&[usize]] = &[&[0, 1], &[1, 0]];
    const P3: &[&[usize]] = &[
        &[0, 1, 2],
        &[0, 2, 1],
        &[1, 0, 2],
        &[1, 2, 0],
        &[2, 0, 1],
        &[2, 1, 0],
    ];
    match n {
        0 => P0,
        1 => P1,
        2 => P2,
        3 => P3,
        _ => unreachable!("small_perms called beyond SMALL_LIMIT"),
    }
}

/// Exhaustive-by-enumeration canonical state for tiny conjunctions: encode
/// the tgd under every (body ordering, head ordering) pair and keep the
/// lexicographically least sequence. Equivalent to [`Canonicalizer`] (both
/// minimize the same encoding over the same ordering space) but allocation
/// free until a new minimum is found.
fn canonical_state_small(tgd: &Tgd) -> SearchState {
    let (body, head) = (tgd.body(), tgd.head());
    let mut renaming = vec![u32::MAX; tgd.var_count()];
    let mut seq: Vec<u32> = Vec::new();
    let mut best: Option<SearchState> = None;
    for &bp in small_perms(body.len()) {
        for &hp in small_perms(head.len()) {
            renaming.iter_mut().for_each(|slot| *slot = u32::MAX);
            seq.clear();
            let mut assigned = 0u32;
            for &i in bp {
                encode_atom(&body[i], &mut renaming, &mut assigned, &mut seq);
            }
            seq.push(SEP);
            for &i in hp {
                encode_atom(&head[i], &mut renaming, &mut assigned, &mut seq);
            }
            if best.as_ref().is_none_or(|b| seq < b.seq) {
                best = Some(SearchState {
                    renaming: renaming.clone(),
                    assigned,
                    seq: seq.clone(),
                    body_order: bp.to_vec(),
                    head_order: hp.to_vec(),
                });
            }
        }
    }
    best.expect("at least one ordering pair")
}

fn canonical_state(tgd: &Tgd) -> SearchState {
    if tgd.body().len() <= SMALL_LIMIT && tgd.head().len() <= SMALL_LIMIT {
        canonical_state_small(tgd)
    } else if tgd.body().len() <= EXACT_LIMIT && tgd.head().len() <= EXACT_LIMIT {
        Canonicalizer {
            body: tgd.body(),
            head: tgd.head(),
            num_vars: tgd.var_count(),
            best: None,
        }
        .run()
    } else {
        greedy_state(tgd)
    }
}

/// The canonical renaming-and-reordering key of a tgd.
pub fn tgd_variant_key(tgd: &Tgd) -> TgdVariantKey {
    TgdVariantKey(canonical_state(tgd).seq)
}

/// The canonical representative of a tgd's renaming/reordering class.
///
/// `canonical_tgd(a) == canonical_tgd(b)` iff `a` and `b` differ only by a
/// variable renaming and by reordering atoms within their conjunctions
/// (exactly, up to [`EXACT_LIMIT`] atoms per conjunction).
pub fn canonical_tgd(tgd: &Tgd) -> Tgd {
    canonical_tgd_with_key(tgd).0
}

/// [`canonical_tgd`] and [`tgd_variant_key`] from a single canonicalization
/// pass — both derive from the same minimal encoding, so callers needing
/// the representative *and* the key (candidate grouping + entailment-cache
/// keying) should not pay for the ordering search twice.
pub fn canonical_tgd_with_key(tgd: &Tgd) -> (Tgd, TgdVariantKey) {
    let st = canonical_state(tgd);
    let rename = |atom: &Atom<Var>| -> Atom<Var> { atom.map(|v| Var(st.renaming[v.index()])) };
    let body: Vec<Atom<Var>> = st
        .body_order
        .iter()
        .map(|&i| rename(&tgd.body()[i]))
        .collect();
    let head: Vec<Atom<Var>> = st
        .head_order
        .iter()
        .map(|&i| rename(&tgd.head()[i]))
        .collect();
    let canon = Tgd::new(body, head).expect("canonical form of a valid tgd is valid");
    (canon, TgdVariantKey(st.seq))
}

/// Removes head atoms that already occur in the body (an
/// equivalence-preserving simplification: the identity extension always
/// witnesses them). Returns `None` when every head atom is redundant, i.e.
/// the tgd is a tautology.
pub fn simplify_tgd(tgd: &Tgd) -> Option<Tgd> {
    let head: Vec<Atom<Var>> = tgd
        .head()
        .iter()
        .filter(|a| !tgd.body().contains(a))
        .cloned()
        .collect();
    if head.is_empty() {
        return None;
    }
    if head.len() == tgd.head().len() {
        return Some(tgd.clone());
    }
    Tgd::new(tgd.body().to_vec(), head).ok()
}

/// `true` when the two tgds are equal up to variable renaming and atom
/// reordering.
pub fn same_up_to_renaming(a: &Tgd, b: &Tgd) -> bool {
    if a.universal_count() != b.universal_count()
        || a.existential_count() != b.existential_count()
        || a.body().len() != b.body().len()
        || a.head().len() != b.head().len()
    {
        return false;
    }
    tgd_variant_key(a) == tgd_variant_key(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_tgd;
    use crate::schema::Schema;

    fn tgd(schema: &mut Schema, text: &str) -> Tgd {
        parse_tgd(schema, text).unwrap()
    }

    #[test]
    fn renaming_variants_share_key() {
        let mut s = Schema::default();
        let a = tgd(&mut s, "R(x,y), S(y,z) -> T(x,z)");
        let b = tgd(&mut s, "R(u,v), S(v,w) -> T(u,w)");
        assert!(same_up_to_renaming(&a, &b));
        assert_eq!(canonical_tgd(&a), canonical_tgd(&b));
    }

    #[test]
    fn reordered_bodies_share_key() {
        let mut s = Schema::default();
        let a = tgd(&mut s, "R(x,y), S(y,z) -> T(x,z)");
        let b = tgd(&mut s, "S(y,z), R(x,y) -> T(x,z)");
        assert!(same_up_to_renaming(&a, &b));
    }

    #[test]
    fn different_patterns_have_different_keys() {
        let mut s = Schema::default();
        let a = tgd(&mut s, "R(x,y) -> T(x,y)");
        let b = tgd(&mut s, "R(x,x) -> T(x,x)");
        let c = tgd(&mut s, "R(x,y) -> T(y,x)");
        assert!(!same_up_to_renaming(&a, &b));
        assert!(!same_up_to_renaming(&a, &c));
        assert!(!same_up_to_renaming(&b, &c));
    }

    #[test]
    fn existential_structure_is_distinguished() {
        let mut s = Schema::default();
        // Shared existential vs. independent existentials.
        let a = tgd(&mut s, "T(x) -> exists z : R(x,z), S(x,z)");
        let b = tgd(&mut s, "T(x) -> exists z, w : R(x,z), S(x,w)");
        assert!(!same_up_to_renaming(&a, &b));
    }

    #[test]
    fn symmetric_bodies_canonicalize_consistently() {
        let mut s = Schema::default();
        // Both atoms have the same predicate; canonical search must explore
        // ties to find the true minimum.
        let a = tgd(&mut s, "E(x,y), E(y,x) -> P(x)");
        let b = tgd(&mut s, "E(b,a), E(a,b) -> P(b)");
        assert!(same_up_to_renaming(&a, &b));
    }

    #[test]
    fn triangle_automorphism() {
        let mut s = Schema::default();
        let a = tgd(&mut s, "E(x,y), E(y,z), E(z,x) -> P(x)");
        let b = tgd(&mut s, "E(z,x), E(x,y), E(y,z) -> P(z)");
        assert!(same_up_to_renaming(&a, &b));
    }

    #[test]
    fn canonical_is_idempotent() {
        let mut s = Schema::default();
        let a = tgd(&mut s, "S(y,z), R(x,y) -> exists w : T(z,w)");
        let c = canonical_tgd(&a);
        assert_eq!(c, canonical_tgd(&c));
        assert!(same_up_to_renaming(&a, &c));
    }

    #[test]
    fn head_reordering_shares_key() {
        let mut s = Schema::default();
        let a = tgd(&mut s, "R(x,y) -> exists z : S(x,z), T(z,y)");
        let b = tgd(&mut s, "R(x,y) -> exists w : T(w,y), S(x,w)");
        assert!(same_up_to_renaming(&a, &b));
    }
}
