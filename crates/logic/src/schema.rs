//! Relational schemas: finite sets of predicates with associated arities.

use crate::error::LogicError;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a predicate within a [`Schema`].
///
/// Predicate ids are dense (`0..schema.len()`), so they can index into
/// per-predicate side tables without hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u32);

impl PredId {
    /// The id as a usize, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct PredInfo {
    name: String,
    arity: usize,
}

/// A relational schema `S = {R_1, ..., R_n}` (paper §2).
///
/// Schemas are immutable once built; use [`Schema::builder`] or
/// [`Schema::parse`](crate::parse::parse_program) to construct one.
///
/// ```
/// use tgdkit_logic::Schema;
/// let s = Schema::builder().pred("R", 2).pred("T", 1).build();
/// let r = s.pred_id("R").unwrap();
/// assert_eq!(s.arity(r), 2);
/// assert_eq!(s.max_arity(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    preds: Vec<PredInfo>,
    by_name: HashMap<String, PredId>,
}

impl Schema {
    /// Creates an empty schema builder.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder {
            schema: Schema::default(),
        }
    }

    /// Number of predicates `|S|`.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// `true` when the schema declares no predicate.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The arity of `pred`.
    #[inline]
    pub fn arity(&self, pred: PredId) -> usize {
        self.preds[pred.index()].arity
    }

    /// The name of `pred`.
    #[inline]
    pub fn name(&self, pred: PredId) -> &str {
        &self.preds[pred.index()].name
    }

    /// Looks up a predicate by name.
    pub fn pred_id(&self, name: &str) -> Option<PredId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over all predicate ids in declaration order.
    pub fn preds(&self) -> impl ExactSizeIterator<Item = PredId> + '_ {
        (0..self.preds.len() as u32).map(PredId)
    }

    /// The maximum arity `ar(S) = max_{R in S} ar(R)`; zero for an empty
    /// schema.
    pub fn max_arity(&self) -> usize {
        self.preds.iter().map(|p| p.arity).max().unwrap_or(0)
    }

    /// Adds a predicate, returning its id. Returns an error if the name is
    /// already declared with a different arity; re-declaring with the same
    /// arity is idempotent.
    pub fn add_pred(&mut self, name: &str, arity: usize) -> Result<PredId, LogicError> {
        // Arity 0 is allowed: the paper's §2 stipulates positive arities,
        // but its own Appendix F reductions use a 0-ary predicate `Aux`;
        // propositional facts are represented as empty tuples downstream.
        if let Some(&id) = self.by_name.get(name) {
            let existing = self.arity(id);
            if existing != arity {
                return Err(LogicError::ConflictingArity {
                    pred: name.to_string(),
                    first: existing,
                    second: arity,
                });
            }
            return Ok(id);
        }
        let id = PredId(self.preds.len() as u32);
        self.preds.push(PredInfo {
            name: name.to_string(),
            arity,
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Returns a new schema extending `self` with the given fresh predicates.
    ///
    /// Existing predicate ids remain valid in the extended schema. This is
    /// used by the Appendix F reductions, which extend a schema with
    /// auxiliary predicates `Aux`, `R`, `S`, `T`.
    pub fn extended_with(&self, preds: &[(&str, usize)]) -> Result<Schema, LogicError> {
        let mut schema = self.clone();
        for &(name, arity) in preds {
            schema.add_pred(name, arity)?;
        }
        Ok(schema)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.preds.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}/{}", p.name, p.arity)?;
        }
        write!(f, "}}")
    }
}

/// Builder for [`Schema`]. Panics on conflicting declarations; use
/// [`Schema::add_pred`] for fallible construction.
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    schema: Schema,
}

impl SchemaBuilder {
    /// Declares a predicate with the given arity.
    ///
    /// # Panics
    /// Panics if the predicate was already declared with a different arity.
    pub fn pred(mut self, name: &str, arity: usize) -> Self {
        self.schema
            .add_pred(name, arity)
            .unwrap_or_else(|e| panic!("schema builder: {e}"));
        self
    }

    /// Finishes building.
    pub fn build(self) -> Schema {
        self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let s = Schema::builder()
            .pred("R", 2)
            .pred("S", 3)
            .pred("T", 1)
            .build();
        assert_eq!(s.len(), 3);
        assert_eq!(s.pred_id("R"), Some(PredId(0)));
        assert_eq!(s.pred_id("S"), Some(PredId(1)));
        assert_eq!(s.pred_id("T"), Some(PredId(2)));
        assert_eq!(s.arity(PredId(1)), 3);
        assert_eq!(s.max_arity(), 3);
        assert_eq!(s.pred_id("missing"), None);
    }

    #[test]
    fn redeclaration_same_arity_is_idempotent() {
        let mut s = Schema::default();
        let a = s.add_pred("R", 2).unwrap();
        let b = s.add_pred("R", 2).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn conflicting_arity_is_rejected() {
        let mut s = Schema::default();
        s.add_pred("R", 2).unwrap();
        let err = s.add_pred("R", 3).unwrap_err();
        assert!(matches!(err, LogicError::ConflictingArity { .. }));
    }

    #[test]
    fn zero_arity_is_allowed_for_appendix_f() {
        let mut s = Schema::default();
        let aux = s.add_pred("Aux", 0).unwrap();
        assert_eq!(s.arity(aux), 0);
    }

    #[test]
    fn extension_preserves_ids() {
        let s = Schema::builder().pred("R", 2).build();
        let ext = s.extended_with(&[("Aux", 1), ("T", 1)]).unwrap();
        assert_eq!(ext.pred_id("R"), s.pred_id("R"));
        assert_eq!(ext.len(), 3);
    }

    #[test]
    fn display_lists_predicates() {
        let s = Schema::builder().pred("R", 2).pred("T", 1).build();
        assert_eq!(s.to_string(), "{R/2, T/1}");
    }

    #[test]
    fn empty_schema() {
        let s = Schema::default();
        assert!(s.is_empty());
        assert_eq!(s.max_arity(), 0);
        assert_eq!(s.to_string(), "{}");
    }
}
