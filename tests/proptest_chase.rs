//! Property-based tests of the chase and entailment layers.

use proptest::prelude::*;
use tgdkit::core::workload::{generate_set, Family, WorkloadParams};
use tgdkit::prelude::*;

fn random_instance(schema: &Schema, seed: u64, size: usize) -> Instance {
    InstanceGen::new(schema.clone(), seed).generate(size, 0.35)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// A terminated chase satisfies its tgd set (the chase's defining
    /// postcondition) and extends its input.
    #[test]
    fn terminated_chase_is_a_model(rule_seed in 0u64..300, data_seed in 0u64..300) {
        let set = generate_set(
            &WorkloadParams { existentials: (rule_seed % 2) as usize, ..Default::default() },
            Family::Unrestricted,
            rule_seed,
        );
        let start = random_instance(set.schema(), data_seed, 4);
        let result = chase(&start, set.tgds(), ChaseVariant::Restricted, ChaseBudget::default());
        if result.terminated() {
            prop_assert!(satisfies_tgds(&result.instance, set.tgds()));
            prop_assert!(start.is_contained_in(&result.instance));
        }
    }

    /// Weak acyclicity certifies termination.
    #[test]
    fn weakly_acyclic_sets_terminate(rule_seed in 0u64..300, data_seed in 0u64..300) {
        let set = generate_set(
            &WorkloadParams { existentials: 1, ..Default::default() },
            Family::Unrestricted,
            rule_seed,
        );
        if is_weakly_acyclic(set.schema(), set.tgds()) {
            let start = random_instance(set.schema(), data_seed, 4);
            let result = chase(&start, set.tgds(), ChaseVariant::Restricted, ChaseBudget::large());
            prop_assert!(result.terminated(), "weakly acyclic set did not terminate");
        }
    }

    /// Full tgd sets always terminate (no nulls are ever invented).
    #[test]
    fn full_sets_terminate_without_nulls(rule_seed in 0u64..300, data_seed in 0u64..300) {
        let set = generate_set(&WorkloadParams::default(), Family::Full, rule_seed);
        let start = random_instance(set.schema(), data_seed, 4);
        let result = chase(&start, set.tgds(), ChaseVariant::Restricted, ChaseBudget::large());
        prop_assert!(result.terminated());
        prop_assert!(result.nulls.is_empty());
    }

    /// Lemma 3.4 as a property: the product of two models is a model.
    #[test]
    fn product_of_models_is_a_model(rule_seed in 0u64..200, a in 0u64..200, b in 0u64..200) {
        let set = generate_set(&WorkloadParams::default(), Family::Full, rule_seed);
        let build_model = |seed| {
            let start = random_instance(set.schema(), seed, 3);
            chase(&start, set.tgds(), ChaseVariant::Restricted, ChaseBudget::large())
        };
        let i = build_model(a);
        let j = build_model(b);
        prop_assume!(i.terminated() && j.terminated());
        let (prod, _) = direct_product(&i.instance, &j.instance);
        prop_assert!(satisfies_tgds(&prod, set.tgds()), "Lemma 3.4 violated");
    }

    /// Satisfaction is isomorphism-invariant.
    #[test]
    fn satisfaction_is_iso_invariant(rule_seed in 0u64..300, data_seed in 0u64..300, shift in 1u32..40) {
        let set = generate_set(&WorkloadParams::default(), Family::Unrestricted, rule_seed);
        let i = random_instance(set.schema(), data_seed, 4);
        let renamed = i.map_elements(|e| Elem(e.0 + shift));
        for tgd in set.tgds() {
            prop_assert_eq!(satisfies_tgd(&i, tgd), satisfies_tgd(&renamed, tgd));
        }
    }

    /// Σ entails each of its members, and entailment is preserved under
    /// strengthening the body.
    #[test]
    fn entailment_reflexivity(rule_seed in 0u64..300) {
        let set = generate_set(&WorkloadParams::default(), Family::Full, rule_seed);
        for tgd in set.tgds() {
            prop_assert_eq!(
                entails(set.schema(), set.tgds(), tgd, ChaseBudget::default()),
                Entailment::Proved
            );
        }
    }

    /// The oblivious chase result contains the restricted chase result
    /// homomorphically (both are universal; oblivious fires more).
    #[test]
    fn oblivious_contains_restricted(rule_seed in 0u64..150, data_seed in 0u64..150) {
        let set = generate_set(&WorkloadParams::default(), Family::Full, rule_seed);
        let start = random_instance(set.schema(), data_seed, 3);
        let restricted = chase(&start, set.tgds(), ChaseVariant::Restricted, ChaseBudget::large());
        let oblivious = chase(&start, set.tgds(), ChaseVariant::Oblivious, ChaseBudget::large());
        prop_assume!(restricted.terminated() && oblivious.terminated());
        // For full tgds the two coincide as fact sets.
        prop_assert!(restricted.instance.is_contained_in(&oblivious.instance));
        prop_assert!(oblivious.instance.is_contained_in(&restricted.instance));
    }

    /// The exact linear backward-rewriting procedure agrees with the chase
    /// whenever the chase is decisive, and is itself always decisive.
    #[test]
    fn linear_rewriting_agrees_with_chase(rule_seed in 0u64..400, cand_seed in 0u64..400) {
        let params = WorkloadParams {
            predicates: 3,
            max_arity: 2,
            rules: 3,
            body_atoms: 1,
            head_atoms: 2,
            universals: 2,
            existentials: 1,
        };
        let sigma = generate_set(&params, Family::Linear, rule_seed);
        prop_assume!(sigma.is_linear() && !sigma.is_empty());
        let candidates = generate_set(&params, Family::Linear, cand_seed);
        for candidate in candidates.tgds() {
            let by_chase = entails(sigma.schema(), sigma.tgds(), candidate, ChaseBudget::small());
            let by_rewriting = tgdkit::chase_crate::entails_linear(
                sigma.schema(),
                sigma.tgds(),
                candidate,
                100_000,
            );
            prop_assert_ne!(by_rewriting, Entailment::Unknown, "rewriting must decide");
            if by_chase != Entailment::Unknown {
                prop_assert_eq!(
                    by_chase,
                    by_rewriting,
                    "disagreement on {:?} |= {:?}",
                    sigma.tgds(),
                    candidate
                );
            }
        }
    }

    /// Rewriting-based Boolean certain answering agrees with chase-based
    /// certain answering on random linear ontologies whenever the chase is
    /// decisive.
    #[test]
    fn rewriting_omqa_agrees_with_chase(rule_seed in 0u64..300, data_seed in 0u64..300) {
        use tgdkit::chase_crate::{certainly_holds, certainly_holds_by_rewriting};
        let params = WorkloadParams {
            predicates: 3,
            max_arity: 2,
            rules: 3,
            body_atoms: 1,
            head_atoms: 1,
            universals: 2,
            existentials: 1,
        };
        let sigma = generate_set(&params, Family::Linear, rule_seed);
        prop_assume!(sigma.is_linear() && !sigma.is_empty());
        let data = random_instance(sigma.schema(), data_seed, 3);
        // A handful of query shapes from the same generator.
        let queries = generate_set(&params, Family::Linear, data_seed + 5000);
        for probe in queries.tgds() {
            let q = Cq::boolean(probe.body().to_vec());
            let by_rewriting = certainly_holds_by_rewriting(&data, sigma.tgds(), &q, 100_000);
            let by_chase = certainly_holds(&data, sigma.tgds(), &q, ChaseBudget::small());
            prop_assert!(by_rewriting.is_some(), "rewriting must decide");
            if let Some(chase_answer) = by_chase {
                prop_assert_eq!(
                    by_rewriting.unwrap(),
                    chase_answer,
                    "OMQA disagreement: sigma {:?}, query {:?}",
                    sigma.tgds(),
                    probe
                );
            }
        }
    }

    /// Hom-universality: the terminated chase maps into every chased
    /// extension of its input.
    #[test]
    fn chase_universality(rule_seed in 0u64..150, data_seed in 0u64..150, extra in 0u64..150) {
        let set = generate_set(
            &WorkloadParams { existentials: 1, ..Default::default() },
            Family::Unrestricted,
            rule_seed,
        );
        let start = random_instance(set.schema(), data_seed, 3);
        let result = chase(&start, set.tgds(), ChaseVariant::Restricted, ChaseBudget::default());
        prop_assume!(result.terminated());
        // A bigger model: chase of start ∪ extra facts.
        let more = union(&start, &random_instance(set.schema(), extra, 3));
        let bigger = chase(&more, set.tgds(), ChaseVariant::Restricted, ChaseBudget::default());
        prop_assume!(bigger.terminated());
        let frozen: Vec<Elem> = start.active_domain().iter().copied().collect();
        prop_assert!(
            tgdkit::chase_crate::universal_hom_into(&result.instance, &frozen, &bigger.instance)
                .is_some(),
            "universality violated"
        );
    }
}
