//! Scheduler-equivalence property tests for the entailment service: for
//! any quantum boundaries (arbitrary per-slice `Checks(k)` limits) and any
//! tenant interleaving, running requests a slice at a time through
//! [`tgdkit::serve::Job`] yields verdicts — and the deterministic parts of
//! the stats — identical to dedicated (unsliced) runs; and a tenant that
//! trips its byte budget never perturbs another tenant's verdict.
//!
//! These drive the same `Job::run_slice` the server's scheduler runs, with
//! the deterministic check-countdown quantum instead of wall clock, so a
//! failing schedule replays exactly.

use proptest::prelude::*;
use tgdkit::chase_crate::{
    ChaseBudget, EntailCache, Entailment, DEFAULT_CACHE_MAX_BYTES, DEFAULT_CACHE_MAX_ENTRIES,
};
use tgdkit::core::workload::{generate_set, Family, WorkloadParams};
use tgdkit::core::RewriteOutcome;
use tgdkit::logic::TgdSet;
use tgdkit::serve::{Job, JobOutput, JobStep, Request, RewriteTarget, SliceLimit};

fn cache() -> EntailCache {
    EntailCache::with_capacity(DEFAULT_CACHE_MAX_ENTRIES, DEFAULT_CACHE_MAX_BYTES)
}

/// Renders a generated set as the program text the wire protocol carries.
fn render(set: &TgdSet) -> String {
    let schema = set.schema();
    set.tgds()
        .iter()
        .map(|t| format!("{}. ", t.display(schema)))
        .collect()
}

/// A batch request over generated guarded rules: Σ from `sigma_seed`,
/// candidates from `cand_seed` over the same predicate vocabulary, so some
/// candidates are entailed and some are not.
fn batch_request(tenant: &str, sigma_seed: u64, cand_seed: u64, rules: usize) -> Request {
    let params = WorkloadParams {
        predicates: 3,
        max_arity: 2,
        rules,
        body_atoms: 2,
        head_atoms: 1,
        universals: 2,
        existentials: 1,
    };
    let sigma = generate_set(&params, Family::Guarded, sigma_seed);
    let candidates = generate_set(&params, Family::Guarded, cand_seed);
    Request::Batch {
        tenant: tenant.into(),
        budget: ChaseBudget {
            max_facts: 2_000,
            max_rounds: 12,
            max_bytes: usize::MAX,
        },
        program: render(&sigma),
        candidates: render(&candidates),
    }
}

fn dedicated_verdicts(request: &Request) -> Vec<Entailment> {
    let mut job = Job::build(request).expect("request builds");
    match job.run_to_completion(&cache()) {
        JobStep::Done(JobOutput::Verdicts(v)) => v,
        other => panic!("dedicated run did not finish: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property (tentpole acceptance): interleaved time-sliced execution
    /// of N concurrent requests — arbitrary per-slice quantum boundaries,
    /// arbitrary tenant interleaving, one shared cache — produces exactly
    /// the verdicts of dedicated runs, with the bookkeeping invariant
    /// `suspensions == quanta - 1` per request.
    #[test]
    fn interleaved_slicing_matches_dedicated_runs(
        seeds in proptest::collection::vec(0u64..500, 2..5),
        schedule in proptest::collection::vec(0usize..64, 1..48),
        quanta in proptest::collection::vec(1u64..4, 1..48),
    ) {
        let requests: Vec<Request> = seeds
            .iter()
            .enumerate()
            .map(|(i, s)| batch_request(&format!("tenant-{i}"), *s, s.wrapping_add(17), 1 + (*s as usize % 3)))
            .collect();
        let references: Vec<Vec<Entailment>> =
            requests.iter().map(dedicated_verdicts).collect();

        let shared = cache();
        let mut jobs: Vec<Option<Job>> =
            requests.iter().map(|r| Some(Job::build(r).expect("builds"))).collect();
        let mut results: Vec<Option<Vec<Entailment>>> = vec![None; jobs.len()];
        let mut step = 0usize;
        while results.iter().any(Option::is_none) {
            // Pick the next unfinished job per the random schedule; fall
            // back to round-robin once the schedule vector is exhausted.
            let pick = *schedule.get(step % schedule.len()).unwrap_or(&step) + step;
            let open: Vec<usize> =
                (0..jobs.len()).filter(|i| results[*i].is_none()).collect();
            let i = open[pick % open.len()];
            let k = quanta[step % quanta.len()];
            let job = jobs[i].as_mut().expect("unfinished job exists");
            match job.run_slice(&shared, SliceLimit::Checks(k)) {
                JobStep::Suspended => prop_assert!(job.is_suspended()),
                JobStep::Done(JobOutput::Verdicts(v)) => {
                    prop_assert_eq!(
                        job.stats.suspensions, job.stats.quanta - 1,
                        "every non-final slice suspended"
                    );
                    results[i] = Some(v);
                }
                other => prop_assert!(false, "unexpected step {:?}", other),
            }
            step += 1;
            prop_assert!(step < 100_000, "scheduler made no progress");
        }
        for (i, reference) in references.iter().enumerate() {
            prop_assert_eq!(
                results[i].as_ref().expect("finished"),
                reference,
                "sliced verdicts diverged for request {}", i
            );
        }
    }

    /// Property: a single request sliced at arbitrary boundaries matches
    /// its dedicated run not just in verdicts but in the deterministic
    /// stats — cache misses and observed memory peak — when both run
    /// against fresh caches.
    #[test]
    fn sliced_stats_match_dedicated_stats(
        seed in 0u64..500,
        k in 1u64..5,
    ) {
        let request = batch_request("t", seed, seed.wrapping_add(29), 2);
        let mut dedicated = Job::build(&request).expect("builds");
        let reference = match dedicated.run_to_completion(&cache()) {
            JobStep::Done(JobOutput::Verdicts(v)) => v,
            other => panic!("dedicated run did not finish: {other:?}"),
        };

        let own = cache();
        let mut sliced = Job::build(&request).expect("builds");
        let verdicts = loop {
            match sliced.run_slice(&own, SliceLimit::Checks(k)) {
                JobStep::Suspended => continue,
                JobStep::Done(JobOutput::Verdicts(v)) => break v,
                other => panic!("unexpected step {other:?}"),
            }
        };
        prop_assert_eq!(verdicts, reference);
        prop_assert_eq!(sliced.stats.cache_misses, dedicated.stats.cache_misses);
        prop_assert_eq!(sliced.stats.mem_peak_bytes, dedicated.stats.mem_peak_bytes);
    }

    /// Property: rewrite requests are slice-equivalent too — same outcome
    /// and same rewritten members under any deterministic quantum.
    #[test]
    fn sliced_rewrite_matches_dedicated(
        seed in 0u64..200,
        k in 1u64..4,
    ) {
        let params = WorkloadParams {
            predicates: 2,
            max_arity: 2,
            rules: 2,
            body_atoms: 2,
            head_atoms: 1,
            universals: 2,
            existentials: 1,
        };
        let set = generate_set(&params, Family::Guarded, seed);
        let request = Request::Rewrite {
            tenant: "rw".into(),
            budget: ChaseBudget {
                max_facts: 2_000,
                max_rounds: 12,
                max_bytes: usize::MAX,
            },
            program: render(&set),
            target: RewriteTarget::Linear,
        };

        let mut dedicated = Job::build(&request).expect("builds");
        let (ref_outcome, ref_rewritten) = match dedicated.run_to_completion(&cache()) {
            JobStep::Done(JobOutput::Rewrite { outcome, rewritten }) => (outcome, rewritten),
            other => panic!("dedicated rewrite did not finish: {other:?}"),
        };

        let own = cache();
        let mut sliced = Job::build(&request).expect("builds");
        let (outcome, rewritten) = loop {
            match sliced.run_slice(&own, SliceLimit::Checks(k)) {
                JobStep::Suspended => continue,
                JobStep::Done(JobOutput::Rewrite { outcome, rewritten }) => {
                    break (outcome, rewritten)
                }
                other => panic!("unexpected step {other:?}"),
            }
        };
        prop_assert_eq!(
            std::mem::discriminant(&outcome),
            std::mem::discriminant(&ref_outcome),
            "outcome class diverged: {:?} vs {:?}", outcome, ref_outcome
        );
        if let (RewriteOutcome::Rewritten(_), RewriteOutcome::Rewritten(_)) =
            (&outcome, &ref_outcome)
        {
            prop_assert_eq!(rewritten, ref_rewritten);
        }
    }

    /// Property (tenant isolation): a request that trips its own byte
    /// budget fails with `MemExceeded` without perturbing an interleaved
    /// request from another tenant — whose verdicts stay byte-identical
    /// to its dedicated run even though the two share scheduler slices.
    #[test]
    fn byte_tripping_request_never_perturbs_another_tenant(
        seed in 0u64..500,
        k in 1u64..4,
    ) {
        let victim_request = batch_request("victim", seed, seed.wrapping_add(41), 2);
        let reference = dedicated_verdicts(&victim_request);

        // The greedy tenant's request has a 1-byte budget over a guarded
        // program with two body groups: the first group's chase residency
        // trips the accountant at the second group boundary.
        let greedy_request = Request::Batch {
            tenant: "greedy".into(),
            budget: ChaseBudget {
                max_facts: 2_000,
                max_rounds: 12,
                max_bytes: 1,
            },
            program: "R(x0, x1) -> exists z0 : R(x1, z0).".into(),
            candidates: "R(x0, x1) -> R(x1, x0). R(x0, x0) -> R(x0, x0).".into(),
        };

        let shared = cache();
        let mut greedy = Some(Job::build(&greedy_request).expect("builds"));
        let mut victim = Job::build(&victim_request).expect("builds");
        let mut greedy_failed = false;
        let verdicts = loop {
            if let Some(job) = greedy.as_mut() {
                match job.run_slice(&shared, SliceLimit::Checks(k)) {
                    JobStep::MemExceeded => {
                        greedy_failed = true;
                        greedy = None;
                    }
                    JobStep::Suspended => {}
                    JobStep::Done(_) => {
                        greedy = None; // settled before the boundary saw the trip
                    }
                    other => panic!("unexpected greedy step {other:?}"),
                }
            }
            match victim.run_slice(&shared, SliceLimit::Checks(k)) {
                JobStep::Suspended => continue,
                JobStep::Done(JobOutput::Verdicts(v)) => break v,
                other => panic!("unexpected victim step {other:?}"),
            }
        };
        if let Some(job) = greedy.as_mut() {
            greedy_failed = matches!(job.run_to_completion(&shared), JobStep::MemExceeded);
        }
        prop_assert!(greedy_failed, "the 1-byte budget must trip");
        prop_assert_eq!(verdicts, reference, "victim verdicts perturbed by the trip");
    }
}
