//! Property-based tests of the locality machinery (paper §3.3, §6–§8) and
//! the rewriting procedures (§9.2).

use proptest::prelude::*;
use tgdkit::core::workload::{generate_set, Family, WorkloadParams};
use tgdkit::prelude::*;

fn set_for(seed: u64) -> TgdSet {
    generate_set(
        &WorkloadParams {
            predicates: 3,
            max_arity: 2,
            rules: 3,
            body_atoms: 2,
            head_atoms: 1,
            universals: 2,
            existentials: 0,
        },
        Family::Full,
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Local embeddability is antitone in n and m: a Yes at (n,m) stays a
    /// Yes at any (n',m') with n' ≤ n, m' ≤ m (fewer obligations).
    #[test]
    fn embeddability_is_antitone(rule_seed in 0u64..200, data_seed in 0u64..200) {
        let set = set_for(rule_seed);
        let i = InstanceGen::new(set.schema().clone(), data_seed).generate(3, 0.4);
        let at = |n, m| locally_embeddable(
            &set, &i, n, m, LocalityFlavor::Plain, &LocalityOptions::default(),
        );
        let full = at(3, 1);
        if full == Verdict::Yes {
            for (n, m) in [(2, 1), (3, 0), (1, 0), (0, 0)] {
                prop_assert_eq!(at(n, m), Verdict::Yes, "antitone violated at ({},{})", n, m);
            }
        }
    }

    /// The refinements are weaker than plain locality-embeddability
    /// (Lemmas 6.2/7.2 operationally): plain Yes forces refined Yes.
    #[test]
    fn refinements_are_weaker(rule_seed in 0u64..200, data_seed in 0u64..200) {
        let set = set_for(rule_seed);
        let i = InstanceGen::new(set.schema().clone(), data_seed).generate(3, 0.4);
        let plain = locally_embeddable(
            &set, &i, 2, 0, LocalityFlavor::Plain, &LocalityOptions::default(),
        );
        if plain == Verdict::Yes {
            for flavor in [LocalityFlavor::Linear, LocalityFlavor::Guarded] {
                prop_assert_eq!(
                    locally_embeddable(&set, &i, 2, 0, flavor, &LocalityOptions::default()),
                    Verdict::Yes
                );
            }
        }
    }

    /// Lemma 3.6 (sampled): (n,m)-local embeddability of a member-candidate
    /// implies membership for full sets at their profile.
    #[test]
    fn lemma_3_6_no_locality_counterexamples(rule_seed in 0u64..200, data_seed in 0u64..200) {
        let set = set_for(rule_seed);
        let (n, m) = set.profile();
        let i = InstanceGen::new(set.schema().clone(), data_seed).generate(3, 0.4);
        let v = locally_embeddable(
            &set, &i, n, m, LocalityFlavor::Plain, &LocalityOptions::default(),
        );
        if v == Verdict::Yes {
            prop_assert!(
                satisfies_tgds(&i, set.tgds()),
                "locality counterexample found: {}", i
            );
        }
    }

    /// Rewriting soundness: whenever Algorithm 1 returns a set, it is
    /// linear and chase-equivalent to the input.
    #[test]
    fn algorithm_1_soundness(rule_seed in 0u64..100) {
        let set = generate_set(
            &WorkloadParams {
                predicates: 2,
                max_arity: 2,
                rules: 2,
                body_atoms: 2,
                head_atoms: 1,
                universals: 2,
                existentials: 0,
            },
            Family::Guarded,
            rule_seed,
        );
        prop_assume!(set.is_guarded());
        match guarded_to_linear(&set, &RewriteOptions::default()) {
            RewriteOutcome::Rewritten(linear) => {
                prop_assert!(linear.iter().all(Tgd::is_linear));
                prop_assert_eq!(
                    equivalent(set.schema(), set.tgds(), &linear, ChaseBudget::default()),
                    Entailment::Proved,
                    "unsound rewriting for {:?}", set.tgds()
                );
            }
            // `Cancelled` cannot arise here (ungoverned call), but the
            // match must stay exhaustive.
            RewriteOutcome::NotRewritable
            | RewriteOutcome::Inconclusive
            | RewriteOutcome::Cancelled
            | RewriteOutcome::Suspended => {}
        }
    }

    /// Rewriting soundness for Algorithm 2.
    #[test]
    fn algorithm_2_soundness(rule_seed in 0u64..100) {
        let set = generate_set(
            &WorkloadParams {
                predicates: 2,
                max_arity: 2,
                rules: 2,
                body_atoms: 2,
                head_atoms: 1,
                universals: 2,
                existentials: 0,
            },
            Family::Unrestricted,
            rule_seed,
        );
        prop_assume!(set.is_frontier_guarded());
        match frontier_guarded_to_guarded(&set, &RewriteOptions::default()) {
            RewriteOutcome::Rewritten(guarded) => {
                prop_assert!(guarded.iter().all(Tgd::is_guarded));
                prop_assert_eq!(
                    equivalent(set.schema(), set.tgds(), &guarded, ChaseBudget::default()),
                    Entailment::Proved
                );
            }
            // `Cancelled` cannot arise here (ungoverned call), but the
            // match must stay exhaustive.
            RewriteOutcome::NotRewritable
            | RewriteOutcome::Inconclusive
            | RewriteOutcome::Cancelled
            | RewriteOutcome::Suspended => {}
        }
    }

    /// A linear input is always rewritten (it is its own witness), and the
    /// result stays within the input's profile (Lemma 6.3 (1) ⇒ (2)).
    #[test]
    fn linear_inputs_always_rewrite(rule_seed in 0u64..100) {
        let set = generate_set(
            &WorkloadParams {
                predicates: 2,
                max_arity: 2,
                rules: 2,
                body_atoms: 1,
                head_atoms: 1,
                universals: 2,
                existentials: 1,
            },
            Family::Linear,
            rule_seed,
        );
        prop_assume!(set.is_linear() && !set.is_empty());
        let (n, m) = set.profile();
        match guarded_to_linear(&set, &RewriteOptions::default()) {
            RewriteOutcome::Rewritten(linear) => {
                for tgd in &linear {
                    prop_assert!(tgd.universal_count() <= n);
                    prop_assert!(tgd.existential_count() <= m);
                }
            }
            RewriteOutcome::NotRewritable => {
                prop_assert!(false, "linear input declared not rewritable");
            }
            // divergent chase: acceptable (Cancelled unreachable ungoverned)
            RewriteOutcome::Inconclusive
            | RewriteOutcome::Cancelled
            | RewriteOutcome::Suspended => {}
        }
    }
}
