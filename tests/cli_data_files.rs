//! The checked-in example data files parse and behave as the README
//! advertises (keeps `examples/data/` and the docs honest).

use tgdkit::prelude::*;

fn load(path: &str) -> String {
    std::fs::read_to_string(format!("{}/{}", env!("CARGO_MANIFEST_DIR"), path))
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

#[test]
fn university_rules_parse_and_terminate() {
    let mut schema = Schema::default();
    let rules =
        tgdkit::logic::parse_tgds(&mut schema, &load("examples/data/university.rules")).unwrap();
    assert_eq!(rules.len(), 11);
    let data = parse_instance(&mut schema, &load("examples/data/university.db")).unwrap();
    assert!(is_weakly_acyclic(&schema, &rules));
    let result = chase(
        &data,
        &rules,
        ChaseVariant::Restricted,
        ChaseBudget::default(),
    );
    assert!(result.terminated());
    assert!(satisfies_tgds(&result.instance, &rules));
}

#[test]
fn university_certain_answer_is_sam() {
    let mut schema = Schema::default();
    let rules =
        tgdkit::logic::parse_tgds(&mut schema, &load("examples/data/university.rules")).unwrap();
    let data = parse_instance(&mut schema, &load("examples/data/university.db")).unwrap();
    let probe = parse_tgd(&mut schema, "Enrolled(s,c), OfferedBy(c,d) -> Ans(s)").unwrap();
    let q = Cq::new(probe.body().to_vec(), vec![Var(0)]).unwrap();
    let result = certain_answers(&data, &rules, &q, ChaseBudget::default());
    assert!(result.complete);
    let names: Vec<&str> = result
        .answers
        .iter()
        .map(|t| result.chase.instance.name_of(t[0]).unwrap())
        .collect();
    assert_eq!(names, vec!["sam"]);
}

#[test]
fn gadget_file_is_the_paper_gadget() {
    let mut schema = Schema::default();
    let rules =
        tgdkit::logic::parse_tgds(&mut schema, &load("examples/data/gadget_9_1.rules")).unwrap();
    let set = TgdSet::new(schema, rules).unwrap();
    assert!(set.is_guarded() && !set.is_linear());
    // Provably not linearizable via the union-closure witness.
    assert!(tgdkit::core::expressibility::union_closure_witness(&set, 4, 0).is_some());
}

#[test]
fn symmetric_rules_separate_the_asymmetric_db() {
    use tgdkit::core::diagram::{separating_edd, DiagramOptions};
    let mut schema = Schema::default();
    let rules =
        tgdkit::logic::parse_tgds(&mut schema, &load("examples/data/symmetric.rules")).unwrap();
    let data = parse_instance(&mut schema, &load("examples/data/asymmetric.db")).unwrap();
    let set = TgdSet::new(schema, rules).unwrap();
    assert!(!satisfies_tgds(&data, set.tgds()));
    let edd = separating_edd(&set, &data, 2, 0, &DiagramOptions::default());
    assert!(edd.is_some(), "README's separate command relies on this");
}
