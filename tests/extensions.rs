//! Integration tests for the extension layers built on top of the paper's
//! core: single-head normalization, chase provenance, certain answers,
//! expressibility fast paths, finite countermodels, and the exact linear
//! entailment procedure — all interacting across crates.

use tgdkit::core::expressibility::{
    disjoint_union_closure_witness, is_guarded_expressible, is_linear_expressible,
    union_closure_witness,
};
use tgdkit::core::workload::{generate_set, Family, WorkloadParams};
use tgdkit::logic::single_head;
use tgdkit::prelude::*;

fn tgd_set(s: &mut Schema, text: &str) -> TgdSet {
    let tgds = parse_tgds(s, text).unwrap();
    TgdSet::new(s.clone(), tgds).unwrap()
}

/// Normalization is a conservative extension: entailment of original-schema
/// tgds is unchanged.
#[test]
fn normalization_preserves_entailment() {
    let mut s = Schema::default();
    let original = tgd_set(&mut s, "P(x) -> exists z : R(x,z), S(z,x). R(x,y) -> Q(y).");
    let normalized = single_head(&original).unwrap();
    assert!(normalized.set.tgds().iter().all(|t| t.head().len() == 1));

    let probes = [
        ("P(x) -> exists z : R(x,z)", Entailment::Proved),
        ("P(x) -> exists z : S(z,x)", Entailment::Proved),
        ("P(x) -> exists z, w : R(x,z), Q(z)", Entailment::Proved),
        ("P(x) -> Q(x)", Entailment::Disproved),
        ("Q(x) -> P(x)", Entailment::Disproved),
    ];
    let mut probe_schema = normalized.set.schema().clone();
    for (text, expected) in probes {
        let candidate = parse_tgd(&mut probe_schema, text).unwrap();
        assert_eq!(
            entails_auto(
                &probe_schema,
                original.tgds(),
                &candidate,
                ChaseBudget::default()
            ),
            expected,
            "original set wrong on {text}"
        );
        assert_eq!(
            entails_auto(
                &probe_schema,
                normalized.set.tgds(),
                &candidate,
                ChaseBudget::default()
            ),
            expected,
            "normalized set diverges on {text}"
        );
    }
}

/// Normalization preserves certain answers over the original schema.
#[test]
fn normalization_preserves_certain_answers() {
    let mut s = Schema::default();
    let original = tgd_set(&mut s, "Emp(x) -> exists d : In(x,d), Dept(d).");
    let normalized = single_head(&original).unwrap();
    let mut data_schema = normalized.set.schema().clone();
    let data = parse_instance(&mut data_schema, "Emp(ann), Emp(bob)").unwrap();
    let probe = parse_tgd(&mut data_schema, "In(x,d), Dept(d) -> Ans(x)").unwrap();
    let q = Cq::new(probe.body().to_vec(), vec![Var(0)]).unwrap();
    let original_answers = certain_answers(&data, original.tgds(), &q, ChaseBudget::default());
    let normalized_answers =
        certain_answers(&data, normalized.set.tgds(), &q, ChaseBudget::default());
    assert!(original_answers.complete && normalized_answers.complete);
    assert_eq!(original_answers.answers, normalized_answers.answers);
    assert_eq!(original_answers.answers.len(), 2);
}

/// The expressibility fast paths agree with the complete procedures on the
/// §9.1 gadgets and on rewritable inputs.
#[test]
fn expressibility_fast_paths_agree() {
    let mut s1 = Schema::default();
    let gadget_g = tgd_set(&mut s1, "R(x), P(x) -> T(x).");
    assert!(union_closure_witness(&gadget_g, 4, 0).is_some());
    assert_eq!(
        is_linear_expressible(&gadget_g, &RewriteOptions::default(), 0),
        Verdict::No
    );

    let mut s2 = Schema::default();
    let gadget_f = tgd_set(&mut s2, "R(x), P(y) -> T(x).");
    assert!(disjoint_union_closure_witness(&gadget_f, 4, 0).is_some());
    assert_eq!(
        is_guarded_expressible(&gadget_f, &RewriteOptions::default(), 0),
        Verdict::No
    );

    let mut s3 = Schema::default();
    let fine = tgd_set(&mut s3, "R(x,y), R(x,x) -> T(x). R(x,y) -> T(x).");
    assert!(union_closure_witness(&fine, 4, 0).is_none());
    assert_eq!(
        is_linear_expressible(&fine, &RewriteOptions::default(), 0),
        Verdict::Yes
    );
}

/// Random cross-check: the union/disjoint-union refutations never fire on
/// genuinely linear/guarded sets (they would contradict closure).
#[test]
fn union_refutations_respect_closure_theorems() {
    for seed in 0..8u64 {
        let linear = generate_set(
            &WorkloadParams {
                body_atoms: 1,
                existentials: 1,
                ..Default::default()
            },
            Family::Linear,
            seed,
        );
        assert!(
            union_closure_witness(&linear, 4, seed).is_none(),
            "false union refutation for a linear set (seed {seed})"
        );
        let guarded = generate_set(
            &WorkloadParams {
                universals: 2,
                ..Default::default()
            },
            Family::Guarded,
            seed,
        );
        assert!(
            disjoint_union_closure_witness(&guarded, 4, seed).is_none(),
            "false disjoint-union refutation for a guarded set (seed {seed})"
        );
    }
}

/// The finite countermodel search never contradicts the chase, across
/// random sets and candidates.
#[test]
fn countermodel_never_contradicts_chase() {
    use tgdkit::chase_crate::{refute_by_countermodel, SearchBudget};
    for seed in 0..20u64 {
        let sigma = generate_set(
            &WorkloadParams {
                rules: 3,
                existentials: 1,
                ..Default::default()
            },
            Family::Unrestricted,
            seed,
        );
        let candidates = generate_set(
            &WorkloadParams {
                rules: 3,
                existentials: 1,
                ..Default::default()
            },
            Family::Unrestricted,
            seed + 1000,
        );
        for candidate in candidates.tgds() {
            let by_chase = entails(
                sigma.schema(),
                sigma.tgds(),
                candidate,
                ChaseBudget::small(),
            );
            let by_search = refute_by_countermodel(
                sigma.schema(),
                sigma.tgds(),
                candidate,
                &SearchBudget {
                    max_extra_elems: 2,
                    max_states: 5_000,
                },
            );
            if by_chase == Entailment::Proved {
                assert_ne!(
                    by_search,
                    Entailment::Disproved,
                    "countermodel contradicts a proof (seed {seed}): {:?}",
                    candidate
                );
            }
        }
    }
}

/// Provenance explains every non-input fact of a data-exchange chase.
#[test]
fn provenance_covers_data_exchange() {
    use tgdkit::chase_crate::chase_with_provenance;
    let mut s = Schema::default();
    let mapping = tgd_set(
        &mut s,
        "Leg(x,y) -> exists p : Route(x,y,p). Route(x,y,p), Route(y,z,q) -> Hub(y).",
    );
    let source = parse_instance(&mut s, "Leg(a,b), Leg(b,c)").unwrap();
    let (result, provenance) = chase_with_provenance(
        &source,
        mapping.tgds(),
        ChaseVariant::Restricted,
        ChaseBudget::default(),
    );
    assert!(result.terminated());
    let derived: Vec<_> = result
        .instance
        .facts()
        .filter(|f| !source.contains_fact(f.pred, &f.args))
        .collect();
    assert!(!derived.is_empty());
    for fact in &derived {
        let step = provenance.explain(fact).expect("derived fact explained");
        assert!(step.tgd_index < mapping.len());
    }
}

/// The exact linear procedure makes already-linear rewriting inputs fully
/// decisive through entails_auto.
#[test]
fn linear_sets_entailment_is_total() {
    let mut s = Schema::default();
    // A divergent-chase linear set.
    let sigma = tgd_set(&mut s, "E(x,y) -> exists z : E(y,z).");
    let candidates = [
        ("E(x,y) -> exists z : E(y,z)", Entailment::Proved),
        ("E(x,y) -> exists z, w : E(y,z), E(z,w)", Entailment::Proved),
        ("E(x,y) -> E(y,x)", Entailment::Disproved),
        ("E(x,y) -> exists z : E(z,x)", Entailment::Disproved),
    ];
    let mut probe_schema = s.clone();
    for (text, expected) in candidates {
        let candidate = parse_tgd(&mut probe_schema, text).unwrap();
        assert_eq!(
            entails_auto(
                &probe_schema,
                sigma.tgds(),
                &candidate,
                ChaseBudget::default()
            ),
            expected,
            "wrong verdict on {text}"
        );
    }
}
