//! Property-based tests for the entailment memoization layer
//! ([`EntailCache`], body-grouped batch evaluation) and the work-stealing
//! candidate evaluator in the rewriting procedures: cached, shared and
//! parallel paths must be observationally identical to the plain
//! per-candidate serial path.

use proptest::prelude::*;
use tgdkit::chase_crate::{
    entails_auto, entails_auto_cached, entails_batch, sigma_fingerprint, ChaseBudget, EntailCache,
    Entailment,
};
use tgdkit::core::rewrite::{
    guarded_to_linear_cached, guarded_to_linear_with_stats, RewriteOptions,
};
use tgdkit::core::workload::{generate_set, Family, WorkloadParams};
use tgdkit::logic::{Tgd, TgdSet};

/// A small random guarded tgd set (the input class of Algorithm 1).
fn random_set(seed: u64, rules: usize, existentials: usize) -> TgdSet {
    let params = WorkloadParams {
        predicates: 3,
        max_arity: 2,
        rules,
        body_atoms: 2,
        head_atoms: 1,
        universals: 2,
        existentials,
    };
    generate_set(&params, Family::Guarded, seed)
}

/// Candidate pool: the members of a second random set over the same schema
/// (so entailment questions are non-trivial in both directions).
fn random_candidates(seed: u64, count: usize) -> Vec<Tgd> {
    let params = WorkloadParams {
        predicates: 3,
        max_arity: 2,
        rules: count,
        body_atoms: 1,
        head_atoms: 1,
        universals: 2,
        existentials: 0,
    };
    generate_set(&params, Family::Unrestricted, seed)
        .tgds()
        .to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Batch evaluation with body-grouped chase sharing returns exactly the
    /// per-candidate `entails_auto` verdicts — cold, and again warm from a
    /// cache populated by the first pass.
    #[test]
    fn cached_batch_agrees_with_entails_auto(
        sigma_seed in 0u64..300,
        cand_seed in 300u64..600,
        rules in 1usize..4,
        existentials in 0usize..2,
    ) {
        let set = random_set(sigma_seed, rules, existentials);
        let candidates = random_candidates(cand_seed, 6);
        let budget = ChaseBudget::default();
        let expected: Vec<Entailment> = candidates
            .iter()
            .map(|c| entails_auto(set.schema(), set.tgds(), c, budget))
            .collect();

        let (ungrouped, stats) =
            entails_batch(set.schema(), set.tgds(), &candidates, budget, None);
        prop_assert_eq!(&ungrouped, &expected);
        prop_assert_eq!(stats.candidates, candidates.len());
        prop_assert!(stats.bodies_chased <= stats.body_groups);

        let cache = EntailCache::new();
        let (cold, _) =
            entails_batch(set.schema(), set.tgds(), &candidates, budget, Some(&cache));
        prop_assert_eq!(&cold, &expected);
        let (warm, warm_stats) =
            entails_batch(set.schema(), set.tgds(), &candidates, budget, Some(&cache));
        prop_assert_eq!(&warm, &expected);
        prop_assert_eq!(warm_stats.bodies_chased, 0);
    }

    /// The single-candidate cached entry point agrees with `entails_auto`,
    /// hits on renaming-stable repeats, and never crosses Σ fingerprints.
    #[test]
    fn cached_single_agrees_with_entails_auto(
        sigma_seed in 0u64..300,
        cand_seed in 300u64..600,
        rules in 1usize..4,
    ) {
        let set = random_set(sigma_seed, rules, 0);
        let candidates = random_candidates(cand_seed, 4);
        let budget = ChaseBudget::default();
        let cache = EntailCache::new();
        for c in &candidates {
            let plain = entails_auto(set.schema(), set.tgds(), c, budget);
            let cached = entails_auto_cached(set.schema(), set.tgds(), c, budget, &cache);
            prop_assert_eq!(cached, plain);
            // Second call must be served from the cache with the same verdict.
            let hits_before = cache.hits();
            let again = entails_auto_cached(set.schema(), set.tgds(), c, budget, &cache);
            prop_assert_eq!(again, plain);
            prop_assert_eq!(cache.hits(), hits_before + 1);
        }
        // Fingerprints separate different sets with high probability; equal
        // sets always share one.
        // Fingerprinting is order-invariant: reversing Σ changes nothing.
        let reversed: Vec<_> = set.tgds().iter().rev().cloned().collect();
        prop_assert_eq!(sigma_fingerprint(set.tgds()), sigma_fingerprint(&reversed));
    }

    /// Serial and work-stealing rewriting produce byte-identical outcomes
    /// (the acceptance criterion of the work-stealing evaluator), and a
    /// shared cache does not change the answer either.
    #[test]
    fn workstealing_rewrite_identical_to_serial(
        sigma_seed in 0u64..200,
        rules in 1usize..3,
    ) {
        let set = random_set(sigma_seed, rules, 0);
        let serial = guarded_to_linear_with_stats(&set, &RewriteOptions::default()).0;
        let parallel = guarded_to_linear_with_stats(
            &set,
            &RewriteOptions { parallel: true, ..Default::default() },
        )
        .0;
        prop_assert_eq!(&serial, &parallel);
        let cache = EntailCache::new();
        let opts = RewriteOptions { parallel: true, ..Default::default() };
        let cold = guarded_to_linear_cached(&set, &opts, &cache).0;
        let warm = guarded_to_linear_cached(&set, &opts, &cache).0;
        prop_assert_eq!(&serial, &cold);
        prop_assert_eq!(&serial, &warm);
    }
}
