//! Checkpoint/resume property tests: for any trip point and any seed,
//! *trip → checkpoint → encode → decode → resume* is indistinguishable
//! from an uninterrupted run — byte-identical chase instances, identical
//! rewrite outcomes, and identical normalized statistics — and a corrupted
//! checkpoint is always rejected with a typed error, never a panic or a
//! silently wrong resume.
//!
//! CI runs this file under the same `TGDKIT_FAULTS_SEED` matrix as
//! `proptest_faults`, so one green run covers one injected-trip schedule
//! and the matrix covers several.

use proptest::prelude::*;
use tgdkit::chase_crate::checkpoint::KIND_CHASE;
use tgdkit::chase_crate::faults::{env_seed, FaultPlan, FaultSite};
use tgdkit::chase_crate::{
    chase_checkpointing, chase_resume, CancelToken, ChaseBudget, ChaseCheckpoint, ChaseOutcome,
    ChaseVariant, CheckpointError, EntailCache, TriggerSearch,
};
use tgdkit::core::workload::{generate_set, Family, WorkloadParams};
use tgdkit::core::{
    guarded_to_linear_checkpointing, guarded_to_linear_resume, RewriteCheckpoint, RewriteOptions,
    RewriteOutcome,
};
use tgdkit::instance::{Elem, Instance};
use tgdkit::logic::TgdSet;

fn random_set(seed: u64, rules: usize, existentials: usize) -> TgdSet {
    let params = WorkloadParams {
        predicates: 3,
        max_arity: 2,
        rules,
        body_atoms: 2,
        head_atoms: 1,
        universals: 2,
        existentials,
    };
    generate_set(&params, Family::Guarded, seed)
}

/// A small start instance over the set's schema: one fact per predicate on
/// a two-element domain, enough to trigger most rules.
fn seed_instance(set: &TgdSet) -> Instance {
    let schema = set.schema();
    let mut inst = Instance::new(schema.clone());
    for pred in schema.preds() {
        let arity = schema.arity(pred);
        inst.add_fact(pred, (0..arity).map(|i| Elem((i % 2) as u32)).collect());
    }
    inst
}

const BUDGET: ChaseBudget = ChaseBudget {
    max_facts: 2_000,
    max_rounds: 12,
    max_bytes: usize::MAX,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1 (chase): tripping the round budget at ANY round `j`,
    /// checkpointing, encoding, decoding, and resuming yields an instance
    /// byte-identical to the uninterrupted run's — and (property 4) the
    /// resumed run's normalized stats equal the uninterrupted run's.
    #[test]
    fn chase_trip_resume_is_invisible(
        set_seed in 0u64..300,
        rules in 1usize..4,
        existentials in 0usize..2,
        trip in 0usize..12,
    ) {
        let set = random_set(set_seed, rules, existentials);
        let start = seed_instance(&set);
        let token = CancelToken::new();
        let (full, _) = chase_checkpointing(
            &start, set.tgds(), ChaseVariant::Restricted, BUDGET, TriggerSearch::Auto, &token,
        );
        prop_assume!(full.stats.rounds > 0);
        let j = trip % full.stats.rounds;
        let (tripped, cp) = chase_checkpointing(
            &start,
            set.tgds(),
            ChaseVariant::Restricted,
            ChaseBudget { max_rounds: j, ..BUDGET },
            TriggerSearch::Auto,
            &token,
        );
        prop_assert_eq!(tripped.outcome, ChaseOutcome::BudgetExceeded);
        let cp = cp.expect("budget trip must be resumable");
        // Property 2: the checkpoint round-trips through its binary frame.
        let decoded = ChaseCheckpoint::decode(&cp.encode(), set.schema()).unwrap();
        prop_assert_eq!(&decoded, cp.as_ref());
        let (resumed, after) = chase_resume(
            &decoded, set.tgds(), BUDGET, TriggerSearch::Auto, &token,
        ).unwrap();
        prop_assert!(after.is_none(), "resume under the full budget completes");
        prop_assert_eq!(resumed.outcome, full.outcome);
        prop_assert_eq!(&resumed.instance, &full.instance, "trip at round {} is visible", j);
        prop_assert_eq!(resumed.stats.rounds, full.stats.rounds);
        // Property 4: run-shape normalization aside (trips/resumes/timing),
        // the stats are those of the uninterrupted run.
        prop_assert_eq!(resumed.stats.normalized(), full.stats.normalized());
        prop_assert_eq!(resumed.stats.resumes, 1);
    }

    /// Property 1 (chase, injected trips): a spurious
    /// `FaultSite::MemBudgetTrip` at an arbitrary round suspends as
    /// `MemoryExceeded`, and resuming with a clean token reproduces the
    /// clean run byte-for-byte.
    #[test]
    fn injected_mem_trip_resume_is_invisible(
        set_seed in 0u64..300,
        rules in 1usize..4,
        schedule in 0u64..6,
    ) {
        let set = random_set(set_seed, rules, 1);
        let start = seed_instance(&set);
        let clean = CancelToken::new();
        let (full, _) = chase_checkpointing(
            &start, set.tgds(), ChaseVariant::Restricted, BUDGET, TriggerSearch::Auto, &clean,
        );
        let seed = env_seed().wrapping_mul(1000) + schedule;
        let token = CancelToken::with_faults(FaultPlan::only(seed, FaultSite::MemBudgetTrip, 3));
        let (tripped, cp) = chase_checkpointing(
            &start, set.tgds(), ChaseVariant::Restricted, BUDGET, TriggerSearch::Auto, &token,
        );
        if tripped.outcome != ChaseOutcome::MemoryExceeded {
            prop_assert!(cp.is_none() || tripped.outcome != ChaseOutcome::Terminated);
            return Ok(());
        }
        prop_assert!(tripped.stats.mem_trips >= 1);
        let cp = cp.expect("memory trip must be resumable");
        let (resumed, _) = chase_resume(
            &cp, set.tgds(), BUDGET, TriggerSearch::Auto, &clean,
        ).unwrap();
        prop_assert_eq!(resumed.outcome, full.outcome);
        prop_assert_eq!(&resumed.instance, &full.instance);
        prop_assert_eq!(resumed.stats.normalized(), full.stats.normalized());
    }

    /// Property 1 (rewrite): an injected memory trip mid-filtering
    /// suspends with a checkpoint; resuming (through encode/decode)
    /// produces the exact outcome — including the identical rewriting —
    /// and filtering counters of the uninterrupted run.
    #[test]
    fn rewrite_trip_resume_is_invisible(
        set_seed in 0u64..120,
        rules in 1usize..3,
        schedule in 0u64..4,
    ) {
        let set = random_set(set_seed, rules, 0);
        let opts = RewriteOptions::default();
        let clean_token = CancelToken::new();
        let (clean, clean_stats, none) = guarded_to_linear_checkpointing(
            &set, &opts, &EntailCache::new(), &clean_token,
        );
        prop_assert!(none.is_none(), "unlimited budget never suspends");
        let seed = env_seed().wrapping_mul(1000) + schedule;
        let token = CancelToken::with_faults(FaultPlan::only(seed, FaultSite::MemBudgetTrip, 2));
        let cache = EntailCache::new();
        let (mut outcome, mut stats, mut cp) =
            guarded_to_linear_checkpointing(&set, &opts, &cache, &token);
        let mut resumes = 0usize;
        while let Some(checkpoint) = cp {
            prop_assert_eq!(&outcome, &RewriteOutcome::Suspended);
            // Property 2 for rewrite checkpoints: binary round-trip.
            let decoded = RewriteCheckpoint::decode(&checkpoint.encode()).unwrap();
            prop_assert_eq!(&decoded, checkpoint.as_ref());
            let (o, s, c) = guarded_to_linear_resume(
                &set, &opts, &cache, &decoded, &clean_token,
            ).unwrap();
            outcome = o;
            stats = s;
            cp = c;
            resumes += 1;
            prop_assert!(resumes <= 1, "clean-token resume cannot re-trip");
        }
        prop_assert_eq!(&outcome, &clean, "suspension changed the verdict");
        prop_assert_eq!(stats.entailed, clean_stats.entailed);
        prop_assert_eq!(stats.unknown_checks, clean_stats.unknown_checks);
        prop_assert_eq!(stats.rewriting_size, clean_stats.rewriting_size);
        prop_assert_eq!(stats.bodies_chased, clean_stats.bodies_chased);
        if resumes > 0 {
            prop_assert_eq!(stats.resumes, resumes);
            prop_assert!(stats.mem_trips >= 1);
        }
    }

    /// Property 3: flipping any single byte (or bit) of an encoded
    /// checkpoint is detected by the checksum and surfaces as a typed
    /// error — resuming from corruption is impossible, and decoding never
    /// panics.
    #[test]
    fn corrupted_checkpoints_are_rejected_not_resumed(
        set_seed in 0u64..300,
        rules in 1usize..4,
        trip in 0usize..12,
        flip_pos in 0usize..10_000,
        flip_bit in 0u8..8,
    ) {
        let set = random_set(set_seed, rules, 1);
        let start = seed_instance(&set);
        let token = CancelToken::new();
        let (full, _) = chase_checkpointing(
            &start, set.tgds(), ChaseVariant::Restricted, BUDGET, TriggerSearch::Auto, &token,
        );
        prop_assume!(full.stats.rounds > 0);
        let (_, cp) = chase_checkpointing(
            &start,
            set.tgds(),
            ChaseVariant::Restricted,
            ChaseBudget { max_rounds: trip % full.stats.rounds, ..BUDGET },
            TriggerSearch::Auto,
            &token,
        );
        let bytes = cp.expect("budget trip must be resumable").encode();
        let mut corrupt = bytes.clone();
        let i = flip_pos % corrupt.len();
        corrupt[i] ^= 1 << flip_bit;
        prop_assert!(
            ChaseCheckpoint::decode(&corrupt, set.schema()).is_err(),
            "flip at byte {}/bit {} went undetected", i, flip_bit
        );
        // Injected corruption at decode time is also a typed error.
        let corrupt_token =
            CancelToken::with_faults(FaultPlan::always(FaultSite::CheckpointCorrupt));
        prop_assert!(matches!(
            ChaseCheckpoint::decode_governed(&bytes, set.schema(), &corrupt_token).unwrap_err(),
            CheckpointError::ChecksumMismatch { .. }
        ));
        // And the pristine frame still decodes: the rejection above was the
        // corruption, not the frame.
        let decoded = ChaseCheckpoint::decode(&bytes, set.schema()).unwrap();
        prop_assert_eq!(decoded.encode(), bytes);
        let _ = KIND_CHASE; // the frame's kind tag is part of the public API
    }
}
