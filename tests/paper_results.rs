//! One integration test per checkable claim of the paper
//! *Model-theoretic Characterizations of Rule-based Ontologies*
//! (Console, Kolaitis, Pieris; PODS 2021).
//!
//! Each test names the paper artifact it validates. Together they are the
//! machine-checked counterpart of the experiment index in DESIGN.md.

use tgdkit::core::characterize::recover_tgds;
use tgdkit::core::enumerate::EnumOptions;
use tgdkit::core::locality::local_on_samples;
use tgdkit::core::mv::{
    example_5_2, full_tgd_property_report, oblivious_closure_fails_on_example_5_2,
};
use tgdkit::core::properties::{
    check_criticality, check_product_closure, member_pairs, sample_members,
};
use tgdkit::core::reductions::{
    fg_entailment_to_guarded_rewritability, guarded_entailment_to_linear_rewritability,
};
use tgdkit::core::separations::{
    cross_check_with_rewriting, guarded_vs_frontier_guarded, linear_vs_guarded, verify,
};
use tgdkit::core::workload::{generate_set, Family, WorkloadParams};
use tgdkit::prelude::*;

fn tgd_set(s: &mut Schema, text: &str) -> TgdSet {
    let tgds = parse_tgds(s, text).unwrap();
    TgdSet::new(s.clone(), tgds).unwrap()
}

/// Lemma 3.2: every TGD-ontology is critical.
#[test]
fn lemma_3_2_every_tgd_ontology_is_critical() {
    for seed in 0..6 {
        let set = generate_set(
            &WorkloadParams {
                existentials: if seed % 2 == 0 { 1 } else { 0 },
                ..Default::default()
            },
            Family::Unrestricted,
            seed,
        );
        let ontology = TgdOntology::new(set);
        assert!(
            check_criticality(&ontology, 3).is_ok(),
            "criticality failed for seed {seed}"
        );
    }
}

/// Lemma 3.4: every TGD-ontology is closed under direct products.
#[test]
fn lemma_3_4_every_tgd_ontology_is_product_closed() {
    for seed in 0..4 {
        let set = generate_set(&WorkloadParams::default(), Family::Full, seed);
        let ontology = TgdOntology::new(set.clone());
        let members = sample_members(set.schema(), set.tgds(), 5, 4, 0.35, seed);
        let pairs = member_pairs(&members, 10);
        assert!(
            check_product_closure(&ontology, &pairs).is_ok(),
            "product closure failed for seed {seed}"
        );
    }
}

/// Lemma 3.6: every TGD_{n,m}-ontology is (n,m)-local — sampled: no
/// instance may be (n,m)-locally embeddable yet a non-member.
#[test]
fn lemma_3_6_tgd_ontologies_are_local() {
    let mut s = Schema::default();
    let set = tgd_set(&mut s, "E(x,y) -> E(y,x). P(x), E(x,y) -> P(y).");
    let (n, m) = set.profile();
    let samples: Vec<Instance> = (0..10)
        .map(|seed| InstanceGen::new(s.clone(), seed).generate(4, 0.3))
        .collect();
    let (verdict, witness) = local_on_samples(
        &set,
        &samples,
        n,
        m,
        LocalityFlavor::Plain,
        &LocalityOptions::default(),
    );
    assert_ne!(
        verdict,
        Verdict::No,
        "locality violated at sample {witness:?}"
    );
}

/// Lemma 3.8: every local ontology is domain independent — for
/// TGD-ontologies membership ignores isolated elements.
#[test]
fn lemma_3_8_domain_independence() {
    let mut s = Schema::default();
    let set = tgd_set(&mut s, "P(x) -> exists z : E(x,z).");
    let ontology = TgdOntology::new(set);
    let mut i = parse_instance(&mut s, "P(a), E(a,b)").unwrap();
    let member_before = ontology.contains(&i);
    i.add_dom_elem(Elem(99));
    assert_eq!(ontology.contains(&i), member_before);
}

/// Theorem 4.1 (constructive direction): a TGD_{n,m} axiomatization is
/// recoverable from the entailment oracle, and axiomatizes the same
/// ontology.
#[test]
fn theorem_4_1_synthesis_recovers_equivalent_sets() {
    let cases = [
        "P(x) -> Q(x).",
        "E(x,y) -> E(y,x).",
        "P(x) -> exists z : E(x,z).",
        "E(x,y) -> E(y,x). P(x), E(x,y) -> P(y).",
    ];
    for text in cases {
        let mut s = Schema::default();
        let hidden = tgd_set(&mut s, text);
        let recovery = recover_tgds(
            &hidden,
            &EnumOptions {
                max_body_atoms: 2,
                max_head_atoms: 2,
                max_candidates: 500_000,
            },
            ChaseBudget::default(),
        );
        assert_eq!(
            recovery.equivalent,
            Entailment::Proved,
            "recovery failed for {text}"
        );
    }
}

/// Corollary 5.1 / Theorem 4.1 specialization: full tgds are the (n,0)-local
/// case — the synthesized set for a full hidden set is full.
#[test]
fn corollary_5_1_full_sets_recover_full() {
    let mut s = Schema::default();
    let hidden = tgd_set(&mut s, "E(x,y), E(y,x) -> P(x).");
    let recovery = recover_tgds(
        &hidden,
        &EnumOptions {
            max_body_atoms: 2,
            max_head_atoms: 1,
            max_candidates: 500_000,
        },
        ChaseBudget::default(),
    );
    assert_eq!(recovery.equivalent, Entailment::Proved);
    assert!(recovery.tgds.iter().all(Tgd::is_full));
}

/// Example 5.2: the Makowsky–Vardi duplicating extension breaks a full tgd;
/// the non-oblivious repair (Def. 5.3) does not.
#[test]
fn example_5_2_counterexample() {
    let ex = example_5_2(); // asserts the claims internally
    assert!(satisfies_tgd(&ex.model, &ex.tgd));
    assert!(!satisfies_tgd(&ex.oblivious_extension, &ex.tgd));
    assert!(satisfies_tgd(&ex.non_oblivious_extension, &ex.tgd));
    let (oblivious, non_oblivious) = oblivious_closure_fails_on_example_5_2();
    assert_eq!(oblivious, Verdict::No);
    assert_eq!(non_oblivious, Verdict::Yes);
}

/// Theorem 5.6 direction (1) ⇒ (2): the property bundle holds for full
/// tgd sets.
#[test]
fn theorem_5_6_property_bundle() {
    for seed in 0..3 {
        let set = generate_set(
            &WorkloadParams {
                rules: 3,
                ..Default::default()
            },
            Family::Full,
            seed,
        );
        let report = full_tgd_property_report(&set, seed);
        assert_eq!(report.one_critical, Verdict::Yes, "seed {seed}");
        assert_eq!(report.domain_independent, Verdict::Yes, "seed {seed}");
        assert_eq!(report.modular, Verdict::Yes, "seed {seed}");
        assert_eq!(report.intersection_closed, Verdict::Yes, "seed {seed}");
        assert_eq!(report.non_oblivious_dup_closed, Verdict::Yes, "seed {seed}");
    }
}

/// Lemmas 6.2 / 7.2: refined local embeddability is implied by plain local
/// embeddability (the refinements quantify over fewer subinstances).
#[test]
fn lemmas_6_2_and_7_2_refinements_are_weaker() {
    let mut s = Schema::default();
    let set = tgd_set(&mut s, "R(x,y) -> T(x).");
    let samples: Vec<Instance> = (0..8)
        .map(|seed| InstanceGen::new(s.clone(), seed).generate(3, 0.4))
        .collect();
    for i in &samples {
        let plain = locally_embeddable(&set, i, 2, 0, LocalityFlavor::Plain, &Default::default());
        if plain == Verdict::Yes {
            for flavor in [LocalityFlavor::Linear, LocalityFlavor::Guarded] {
                assert_eq!(
                    locally_embeddable(&set, i, 2, 0, flavor, &Default::default()),
                    Verdict::Yes,
                    "refinement stronger than plain on {i}"
                );
            }
        }
    }
}

/// §9.1, separation 1: Σ_G is not linear (1,0)-local; cross-checked with
/// Algorithm 1 returning NotRewritable.
#[test]
fn section_9_1_linear_guarded_separation() {
    let sep = linear_vs_guarded();
    assert_eq!(verify(&sep), Verdict::Yes);
    assert_eq!(cross_check_with_rewriting(&sep), Verdict::Yes);
}

/// §9.1, separation 2: Σ_F is not guarded (2,0)-local; cross-checked with
/// Algorithm 2 returning NotRewritable.
#[test]
fn section_9_1_guarded_fg_separation() {
    let sep = guarded_vs_frontier_guarded();
    assert_eq!(verify(&sep), Verdict::Yes);
    assert_eq!(cross_check_with_rewriting(&sep), Verdict::Yes);
}

/// Theorem 9.1 (Algorithm 1): soundness on rewritable and non-rewritable
/// inputs, with chase-verified equivalence of produced rewritings.
#[test]
fn theorem_9_1_algorithm_1_end_to_end() {
    // Rewritable: redundant side atom.
    let mut s = Schema::default();
    let rewritable = tgd_set(&mut s, "R(x,y), R(x,x) -> T(x). R(x,y) -> T(x).");
    match guarded_to_linear(&rewritable, &RewriteOptions::default()) {
        RewriteOutcome::Rewritten(linear) => {
            assert!(linear.iter().all(Tgd::is_linear));
            assert_eq!(
                equivalent(&s, rewritable.tgds(), &linear, ChaseBudget::default()),
                Entailment::Proved
            );
        }
        other => panic!("expected a rewriting, got {other:?}"),
    }
    // Not rewritable: the §9.1 gadget (checked in the separation tests via
    // cross_check_with_rewriting).
}

/// Theorem 9.2 (Algorithm 2): soundness on a guardable frontier-guarded set.
#[test]
fn theorem_9_2_algorithm_2_end_to_end() {
    let mut s = Schema::default();
    let guardable = tgd_set(&mut s, "R(x,y) -> P(x). R(x,y), P(x) -> T(x).");
    match frontier_guarded_to_guarded(&guardable, &RewriteOptions::default()) {
        RewriteOutcome::Rewritten(guarded) => {
            assert!(guarded.iter().all(Tgd::is_guarded));
            assert_eq!(
                equivalent(&s, guardable.tgds(), &guarded, ChaseBudget::default()),
                Entailment::Proved
            );
        }
        other => panic!("expected a rewriting, got {other:?}"),
    }
}

/// Appendix F, Theorem 9.1 reduction: entailment instances map to
/// rewritability instances (positive and negative).
#[test]
fn appendix_f_reduction_to_linear_rewritability() {
    let mut s = Schema::default();
    let positive = tgd_set(&mut s, "true -> exists u : P(u). P(x) -> Q(x).");
    let q = s.pred_id("Q").unwrap();
    let reduction = guarded_entailment_to_linear_rewritability(&positive, q).unwrap();
    let opts = RewriteOptions {
        enumeration: EnumOptions {
            max_head_atoms: 2,
            max_body_atoms: 2,
            max_candidates: 200_000,
        },
        parallel: true,
        ..Default::default()
    };
    assert!(matches!(
        guarded_to_linear(&reduction.sigma_prime, &opts),
        RewriteOutcome::Rewritten(_)
    ));

    let mut s2 = Schema::default();
    let negative = tgd_set(&mut s2, "P(x) -> Q(x).");
    let q2 = s2.pred_id("Q").unwrap();
    let reduction2 = guarded_entailment_to_linear_rewritability(&negative, q2).unwrap();
    let exhaustive = RewriteOptions {
        enumeration: EnumOptions {
            max_head_atoms: 8,
            max_body_atoms: 8,
            max_candidates: 500_000,
        },
        parallel: true,
        ..Default::default()
    };
    assert_eq!(
        guarded_to_linear(&reduction2.sigma_prime, &exhaustive),
        RewriteOutcome::NotRewritable
    );
}

/// Appendix F, Theorem 9.2 reduction, same shape.
#[test]
fn appendix_f_reduction_to_guarded_rewritability() {
    let mut s = Schema::default();
    let positive = tgd_set(&mut s, "true -> exists u : P(u). P(x) -> Q(x).");
    let q = s.pred_id("P").unwrap();
    // Query P is also entailed (the empty-body rule generates it).
    let reduction = fg_entailment_to_guarded_rewritability(&positive, q).unwrap();
    let opts = RewriteOptions {
        enumeration: EnumOptions {
            max_head_atoms: 2,
            max_body_atoms: 2,
            max_candidates: 200_000,
        },
        parallel: true,
        ..Default::default()
    };
    assert!(matches!(
        frontier_guarded_to_guarded(&reduction.sigma_prime, &opts),
        RewriteOutcome::Rewritten(_)
    ));
}

/// The Linearization Lemma's profile claim (Lemma 6.3, (1) ⇒ (2)): when a
/// rewriting exists, one exists within the input's own (n,m) — which is
/// exactly the space Algorithm 1 searches, so any produced rewriting
/// respects the profile.
#[test]
fn lemma_6_3_profile_preservation() {
    let mut s = Schema::default();
    let set = tgd_set(
        &mut s,
        "R(x,y), R(x,x) -> exists z : S(x,z). R(x,y) -> exists z : S(x,z).",
    );
    let (n, m) = set.profile();
    if let RewriteOutcome::Rewritten(linear) = guarded_to_linear(&set, &RewriteOptions::default()) {
        for tgd in &linear {
            assert!(tgd.universal_count() <= n);
            assert!(tgd.existential_count() <= m);
        }
    } else {
        panic!("expected a rewriting");
    }
}

/// Fig. 1 / Def. 3.5 sanity: membership implies local embeddability (the
/// witnesses live inside I itself).
#[test]
fn members_are_locally_embeddable() {
    let mut s = Schema::default();
    let set = tgd_set(&mut s, "E(x,y) -> E(y,x).");
    for seed in 0..6 {
        let start = InstanceGen::new(s.clone(), seed).generate(4, 0.3);
        let model = chase(
            &start,
            set.tgds(),
            ChaseVariant::Restricted,
            ChaseBudget::default(),
        );
        assert!(model.terminated());
        let v = locally_embeddable(
            &set,
            &model.instance,
            2,
            0,
            LocalityFlavor::Plain,
            &Default::default(),
        );
        assert_eq!(v, Verdict::Yes, "member not embeddable (seed {seed})");
    }
}
