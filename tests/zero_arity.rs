//! Edge-case suite for 0-ary (propositional) predicates, which the paper's
//! Appendix F reductions rely on (`Aux`) even though its §2 stipulates
//! positive arities. Every layer must handle empty tuples.

use tgdkit::prelude::*;

#[test]
fn parsing_and_display_roundtrip() {
    let mut s = Schema::default();
    let tgds = parse_tgds(&mut s, "P(x), Aux() -> Q(x). Q(x) -> Aux().").unwrap();
    assert_eq!(s.arity(s.pred_id("Aux").unwrap()), 0);
    for tgd in &tgds {
        let rendered = tgd.display(&s).to_string();
        let reparsed = parse_tgd(&mut s.clone(), &rendered).unwrap();
        assert_eq!(tgd, &reparsed);
    }
    let inst = parse_instance(&mut s, "{ P(a), Aux() }").unwrap();
    assert_eq!(inst.fact_count(), 2);
    assert!(inst.to_string().contains("Aux()"));
}

#[test]
fn satisfaction_with_propositional_guard() {
    let mut s = Schema::default();
    let tgds = parse_tgds(&mut s, "P(x), Aux() -> Q(x).").unwrap();
    let without_aux = parse_instance(&mut s, "P(a)").unwrap();
    let with_aux = parse_instance(&mut s, "P(a), Aux()").unwrap();
    let closed = parse_instance(&mut s, "P(a), Aux(), Q(a)").unwrap();
    assert!(satisfies_tgds(&without_aux, &tgds)); // vacuous
    assert!(!satisfies_tgds(&with_aux, &tgds));
    assert!(satisfies_tgds(&closed, &tgds));
}

#[test]
fn chase_fires_propositional_heads_once() {
    let mut s = Schema::default();
    let tgds = parse_tgds(&mut s, "P(x) -> Aux(). Aux(), P(x) -> Q(x).").unwrap();
    let start = parse_instance(&mut s, "P(a), P(b)").unwrap();
    let result = chase(
        &start,
        &tgds,
        ChaseVariant::Restricted,
        ChaseBudget::default(),
    );
    assert!(result.terminated());
    // Aux once, Q(a), Q(b).
    assert_eq!(result.instance.fact_count(), 5);
    let aux = s.pred_id("Aux").unwrap();
    assert!(result.instance.contains_fact(aux, &[]));
}

#[test]
fn products_and_critical_instances() {
    use tgdkit::instance::{critical_instance, direct_product, is_critical};
    let schema = Schema::builder().pred("Aux", 0).pred("P", 1).build();
    // A k-critical instance has the single empty Aux tuple (k^0 = 1).
    let crit = critical_instance(&schema, 2, 0);
    assert!(is_critical(&crit));
    let aux = schema.pred_id("Aux").unwrap();
    assert!(crit.contains_fact(aux, &[]));
    assert_eq!(crit.fact_count(), 1 + 2);
    // Products: Aux holds in the product iff it holds in both components.
    let mut with_aux = Instance::new(schema.clone());
    with_aux.add_fact(aux, vec![]);
    with_aux.add_dom_elem(Elem(0));
    let mut without = Instance::new(schema.clone());
    without.add_dom_elem(Elem(0));
    let (both, _) = direct_product(&with_aux, &with_aux);
    assert!(both.contains_fact(aux, &[]));
    let (mixed, _) = direct_product(&with_aux, &without);
    assert!(!mixed.contains_fact(aux, &[]));
}

#[test]
fn entailment_through_propositional_state() {
    let mut s = Schema::default();
    let sigma = parse_tgds(&mut s, "P(x) -> Aux(). Aux(), Q(x) -> R(x).").unwrap();
    // Q alone does not entail R...
    let q_only = parse_tgd(&mut s, "Q(x) -> R(x)").unwrap();
    assert_eq!(
        entails_auto(&s, &sigma, &q_only, ChaseBudget::default()),
        Entailment::Disproved
    );
    // ... but Q plus any P does.
    let with_p = parse_tgd(&mut s, "Q(x), P(y) -> R(x)").unwrap();
    assert_eq!(
        entails_auto(&s, &sigma, &with_p, ChaseBudget::default()),
        Entailment::Proved
    );
}

#[test]
fn empty_body_to_propositional_head() {
    let mut s = Schema::default();
    // `true -> Aux()` has no variables, which §2's footnote disallows for
    // tgds; the builder must reject it rather than misbehave.
    assert!(parse_tgds(&mut s, "true -> Aux().").is_err());
}

#[test]
fn hom_and_iso_with_zero_arity() {
    use tgdkit::hom::are_isomorphic;
    let mut s = Schema::default();
    let a = parse_instance(&mut s, "{ Aux(), P(x) }").unwrap();
    let b = parse_instance(&mut s, "{ Aux(), P(y) }").unwrap();
    let c = parse_instance(&mut s, "{ P(y) }").unwrap();
    assert!(are_isomorphic(&a, &b));
    assert!(!are_isomorphic(&a, &c));
    assert!(embeds_fixing(&c, &a, &[]));
}
