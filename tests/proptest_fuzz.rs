//! Robustness fuzzing: arbitrary input text must never panic the parsers —
//! they either parse or return a positioned error.

use proptest::prelude::*;
use tgdkit::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The dependency parser is total on arbitrary strings.
    #[test]
    fn dependency_parser_never_panics(text in ".{0,80}") {
        let mut schema = Schema::default();
        let _ = tgdkit::logic::parse_dependencies(&mut schema, &text);
    }

    /// The instance parser is total on arbitrary strings.
    #[test]
    fn instance_parser_never_panics(text in ".{0,80}") {
        let mut schema = Schema::default();
        let _ = parse_instance(&mut schema, &text);
    }

    /// Syntax-shaped fuzz: near-miss rule strings built from grammar
    /// fragments never panic, and successful parses round-trip.
    #[test]
    fn near_miss_rules_are_handled(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("R(x,y)".to_string()),
                Just("P(x)".to_string()),
                Just("->".to_string()),
                Just("exists z :".to_string()),
                Just("|".to_string()),
                Just("x = y".to_string()),
                Just(",".to_string()),
                Just(".".to_string()),
                Just("true".to_string()),
                Just("schema { R/2 }".to_string()),
            ],
            0..8,
        )
    ) {
        let text = parts.join(" ");
        let mut schema = Schema::default();
        if let Ok(deps) = tgdkit::logic::parse_dependencies(&mut schema, &text) {
            for dep in &deps {
                prop_assert!(dep.validate(&schema).is_ok());
                // Display output must re-parse.
                let rendered = dep.display(&schema).to_string();
                let mut schema2 = schema.clone();
                prop_assert!(
                    tgdkit::logic::parse_dependencies(&mut schema2, &format!("{rendered}."))
                        .is_ok(),
                    "display output failed to reparse: {rendered}"
                );
            }
        }
    }

    /// Schema mutations through repeated parses stay consistent: arities
    /// never silently change.
    #[test]
    fn schema_arity_stability(seed in 0u64..1000) {
        use tgdkit::core::workload::{generate_set, Family, WorkloadParams};
        let set = generate_set(&WorkloadParams::default(), Family::Unrestricted, seed);
        let mut schema = set.schema().clone();
        let before: Vec<usize> = schema.preds().map(|p| schema.arity(p)).collect();
        // Reparse every rule's rendering against the same schema.
        for tgd in set.tgds() {
            let rendered = tgd.display(&schema).to_string();
            let reparsed = parse_tgd(&mut schema, &rendered).unwrap();
            prop_assert_eq!(tgd, &reparsed);
        }
        let after: Vec<usize> = schema.preds().map(|p| schema.arity(p)).collect();
        prop_assert_eq!(before, after);
    }
}
