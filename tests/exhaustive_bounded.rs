//! Exhaustive bounded-universe verification: the paper's "for every
//! instance" claims checked over *every* instance with at most two domain
//! elements — no sampling gap, domain sizes where the combinatorics stay
//! enumerable.

use std::ops::ControlFlow;
use tgdkit::core::characterize::{dd_pipeline, edd_pipeline, EddEnumOptions};
use tgdkit::core::universe::{all_instances_up_to, for_each_instance};
use tgdkit::prelude::*;

fn tgd_set(s: &mut Schema, text: &str) -> TgdSet {
    let tgds = parse_tgds(s, text).unwrap();
    TgdSet::new(s.clone(), tgds).unwrap()
}

/// Lemma 3.6, exhaustively: over every instance with ≤ 2 elements, local
/// embeddability at the profile implies membership.
#[test]
fn lemma_3_6_exhaustive_over_two_elements() {
    let cases = [
        "P(x) -> Q(x).",
        "E(x,y) -> E(y,x).",
        "P(x) -> exists z : E(x,z).",
        "E(x,y), E(y,x) -> P(x).",
    ];
    for text in cases {
        let mut s = Schema::default();
        let set = tgd_set(&mut s, text);
        let (n, m) = set.profile();
        for k in 0..=2usize {
            let flow = for_each_instance(&s, k, &mut |i| {
                let v = locally_embeddable(
                    &set,
                    i,
                    n,
                    m,
                    LocalityFlavor::Plain,
                    &LocalityOptions::default(),
                );
                if v == Verdict::Yes && !satisfies_tgds(i, set.tgds()) {
                    panic!("Lemma 3.6 violated by {i} under {text}");
                }
                ControlFlow::Continue(())
            });
            assert_eq!(flow, ControlFlow::Continue(()));
        }
    }
}

/// Lemma 3.8 exhaustively: membership never depends on isolated elements.
#[test]
fn domain_independence_exhaustive() {
    let mut s = Schema::default();
    let set = tgd_set(&mut s, "P(x) -> exists z : E(x,z).");
    let ontology = TgdOntology::new(set);
    for i in all_instances_up_to(&s, 2) {
        let mut padded = i.clone();
        padded.add_dom_elem(padded.fresh_elem());
        assert_eq!(ontology.contains(&i), ontology.contains(&padded));
    }
}

/// Theorem 5.6, both directions at bounded scale: take the full-tgd
/// ontology restricted to the ≤2-element universe as an explicit finite
/// family, run the Appendix B dd-pipeline, and check the synthesized full
/// tgds define the same bounded class.
#[test]
fn theorem_5_6_roundtrip_on_bounded_universe() {
    let mut s = Schema::default();
    let hidden = tgd_set(&mut s, "P(x) -> Q(x).");
    let universe = all_instances_up_to(&s, 2);
    let members: Vec<Instance> = universe
        .iter()
        .filter(|i| satisfies_tgds(i, hidden.tgds()))
        .cloned()
        .collect();
    let family = FiniteOntology::new(s.clone(), members);
    let pipeline = dd_pipeline(
        &family,
        1,
        &EddEnumOptions {
            max_body_atoms: 2,
            ..Default::default()
        },
    );
    assert!(!pipeline.sigma_full.is_empty());
    // The synthesized full tgds agree with the hidden set on the whole
    // bounded universe.
    for i in &universe {
        assert_eq!(
            satisfies_tgds(i, hidden.tgds()),
            satisfies_tgds(i, &pipeline.sigma_full),
            "disagreement on {i}"
        );
    }
}

/// Theorem 4.1 at bounded scale with the literal edd pipeline against an
/// extensionally-given ontology.
#[test]
fn theorem_4_1_pipeline_on_bounded_finite_ontology() {
    let mut s = Schema::default();
    let hidden = tgd_set(&mut s, "P(x) -> Q(x). Q(x) -> P(x).");
    let universe = all_instances_up_to(&s, 2);
    let members: Vec<Instance> = universe
        .iter()
        .filter(|i| satisfies_tgds(i, hidden.tgds()))
        .cloned()
        .collect();
    let family = FiniteOntology::new(s.clone(), members);
    let pipeline = edd_pipeline(&family, 1, 0, &EddEnumOptions::default());
    for i in &universe {
        assert_eq!(
            satisfies_tgds(i, hidden.tgds()),
            satisfies_tgds(i, &pipeline.sigma_exists),
            "Σ^∃ disagrees on {i}"
        );
    }
}

/// Closure lemmas exhaustively: products and (for full sets) intersections
/// of *all* bounded member pairs stay members.
#[test]
fn closure_lemmas_exhaustive_over_small_members() {
    use tgdkit::instance::{direct_product, intersection};
    let mut s = Schema::default();
    let set = tgd_set(&mut s, "E(x,y), E(y,x) -> P(x).");
    let universe = all_instances_up_to(&s, 2);
    let members: Vec<&Instance> = universe
        .iter()
        .filter(|i| satisfies_tgds(i, set.tgds()))
        .collect();
    assert!(members.len() > 4);
    for a in &members {
        for b in &members {
            let (prod, _) = direct_product(a, b);
            assert!(
                satisfies_tgds(&prod, set.tgds()),
                "Lemma 3.4 violated: {a} ⊗ {b}"
            );
            let meet = intersection(a, b);
            assert!(
                satisfies_tgds(&meet, set.tgds()),
                "∩-closure violated for a full set: {a} ∩ {b}"
            );
        }
    }
}

/// The §9.1 separations restated exhaustively: over the ≤2-element
/// universe, membership in the gadget ontology coincides with satisfaction,
/// and the locality counterexample is unique up to the expected pattern.
#[test]
fn separation_witnesses_exist_in_the_bounded_universe() {
    let mut s = Schema::default();
    let set = tgd_set(&mut s, "R(x), P(x) -> T(x).");
    let mut counterexamples = 0usize;
    for i in all_instances_up_to(&s, 1) {
        let v = locality_counterexample(
            &set,
            &i,
            1,
            0,
            LocalityFlavor::Linear,
            &LocalityOptions::default(),
        );
        if v == Verdict::Yes {
            counterexamples += 1;
            // Every counterexample over one element must contain R and P
            // without T (the paper's witness shape).
            let r = s.pred_id("R").unwrap();
            let p = s.pred_id("P").unwrap();
            let t = s.pred_id("T").unwrap();
            assert!(i.contains_fact(r, &[Elem(0)]));
            assert!(i.contains_fact(p, &[Elem(0)]));
            assert!(!i.contains_fact(t, &[Elem(0)]));
        }
    }
    assert_eq!(counterexamples, 1, "exactly the paper's witness");
}
