//! Property-based tests for the incremental chase machinery: append-only
//! index maintenance ([`InstanceIndex::extend`]) and the determinism of the
//! parallel trigger search.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tgdkit::core::workload::{generate_set, Family, WorkloadParams};
use tgdkit::hom::InstanceIndex;
use tgdkit::instance::Fact;
use tgdkit::logic::PredId;
use tgdkit::prelude::*;

/// A schema exercising the index edge cases: a zero-arity predicate next to
/// ordinary ones.
fn mixed_schema() -> Schema {
    Schema::builder()
        .pred("Z", 0)
        .pred("P", 1)
        .pred("R", 2)
        .pred("T", 3)
        .build()
}

/// Random facts over [`mixed_schema`], with repetitions likely.
fn random_facts(schema: &Schema, seed: u64, count: usize) -> Vec<Fact> {
    let mut rng = StdRng::seed_from_u64(seed);
    let preds: Vec<PredId> = schema.preds().collect();
    (0..count)
        .map(|_| {
            let pred = preds[rng.random_range(0..preds.len())];
            let arity = schema.arity(pred);
            let args = (0..arity)
                .map(|_| Elem(rng.random_range(0u32..6)))
                .collect();
            Fact::new(pred, args)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// `InstanceIndex::extend(delta)` is observationally equivalent to a
    /// fresh `InstanceIndex::new` on the extended instance: same tuple
    /// sets, same counts, and postings that dereference consistently —
    /// including zero-arity predicates and duplicate delta facts.
    #[test]
    fn extend_equals_fresh_build(
        base_seed in 0u64..500,
        delta_seed in 500u64..1000,
        base_size in 0usize..25,
        delta_size in 0usize..25,
    ) {
        let schema = mixed_schema();
        let base = random_facts(&schema, base_seed, base_size);
        let delta = random_facts(&schema, delta_seed, delta_size);

        let mut instance = Instance::new(schema.clone());
        for fact in &base {
            instance.add_fact(fact.pred, fact.args.clone());
        }
        let mut incremental = InstanceIndex::new(&instance);
        incremental.extend(&delta);

        for fact in &delta {
            instance.add_fact(fact.pred, fact.args.clone());
        }
        let fresh = InstanceIndex::new(&instance);

        prop_assert_eq!(incremental.total_count(), fresh.total_count());
        for pred in schema.preds() {
            prop_assert_eq!(incremental.count(pred), fresh.count(pred));
            let mut a = incremental.tuples(pred).to_vec();
            let mut b = fresh.tuples(pred).to_vec();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "tuple sets differ on {:?}", pred);
            // Postings consistency: every row is reachable through each of
            // its positions, and every posting hit dereferences to a row
            // carrying the probed element (read through the columns).
            let tuples = incremental.tuples(pred);
            for t in 0..tuples.len() {
                for pos in 0..tuples.arity() {
                    let e = tuples.at(t, pos);
                    prop_assert!(
                        incremental.postings(pred, pos, e).contains(&(t as u32)),
                        "row {} not reachable via position {}", t, pos
                    );
                }
            }
            for pos in 0..schema.arity(pred) {
                for e in (0..6).map(Elem) {
                    for &hit in incremental.postings(pred, pos, e) {
                        prop_assert_eq!(incremental.at(pred, hit, pos), e);
                    }
                }
            }
            // Membership agrees with the fresh build.
            for tuple in fresh.tuples(pred).to_vec() {
                prop_assert!(incremental.contains(pred, &tuple));
            }
        }
        // Predicates beyond the indexed schema read as empty, never panic.
        let ghost = PredId(99);
        prop_assert_eq!(incremental.count(ghost), 0);
        prop_assert!(incremental.tuples(ghost).is_empty());
        prop_assert!(incremental.postings(ghost, 0, Elem(0)).is_empty());
        prop_assert!(!incremental.contains(ghost, &[Elem(0)]));
    }

    /// The parallel trigger search produces byte-identical chase results to
    /// the serial one — same facts, same null names, same round count — for
    /// both chase variants.
    #[test]
    fn parallel_chase_matches_serial(rule_seed in 0u64..200, data_seed in 0u64..200) {
        let set = generate_set(
            &WorkloadParams { existentials: (rule_seed % 2) as usize, ..Default::default() },
            Family::Unrestricted,
            rule_seed,
        );
        let start = InstanceGen::new(set.schema().clone(), data_seed).generate(4, 0.35);
        // Tight budget: divergent sets are cut off early — determinism must
        // hold on truncated runs too, and the oblivious variant explodes on
        // unrestricted sets otherwise.
        let budget = ChaseBudget {
            max_facts: 400,
            max_rounds: 12,
            max_bytes: usize::MAX,
        };
        for variant in [ChaseVariant::Restricted, ChaseVariant::Oblivious] {
            let serial = chase_configured(
                &start, set.tgds(), variant, budget, TriggerSearch::Serial,
            );
            let parallel = chase_configured(
                &start, set.tgds(), variant, budget, TriggerSearch::Parallel(3),
            );
            prop_assert_eq!(&serial.instance, &parallel.instance, "instances diverge");
            prop_assert_eq!(&serial.nulls, &parallel.nulls, "null names diverge");
            prop_assert_eq!(serial.rounds, parallel.rounds);
            prop_assert_eq!(serial.outcome, parallel.outcome);
            // And the full serialized forms agree byte for byte.
            prop_assert_eq!(
                format!("{:?}", serial.instance),
                format!("{:?}", parallel.instance)
            );
        }
    }

    /// Every chase run populates its stats coherently: rounds mirror the
    /// result, exactly one full index build happens per pass, and fired
    /// triggers never exceed found ones.
    #[test]
    fn chase_stats_are_coherent(rule_seed in 0u64..200, data_seed in 0u64..200) {
        let set = generate_set(&WorkloadParams::default(), Family::Full, rule_seed);
        let start = InstanceGen::new(set.schema().clone(), data_seed).generate(4, 0.35);
        let result = chase(&start, set.tgds(), ChaseVariant::Restricted, ChaseBudget::large());
        prop_assert_eq!(result.stats.rounds, result.rounds);
        prop_assert_eq!(result.stats.index_rebuilds, 1, "incremental path regressed");
        prop_assert!(result.stats.triggers_fired <= result.stats.triggers_found);
        prop_assert_eq!(
            result.stats.facts_added,
            result.instance.fact_count() - start.fact_count()
        );
    }
}
