//! Recovery behavior for *partial generation pairs*: a store directory
//! where a `wal-NNNNNN.tgkw` exists without its snapshot (or vice versa),
//! or where a whole generation's pair was deleted out from under the
//! init marker. The contract under test: a verifying older pair is
//! always preferred over silent re-initialization, a stray WAL from a
//! never-completed generation is ignored, a missing WAL degrades to the
//! snapshot state, and losing *every* snapshot while the marker (or any
//! WAL) remains is a typed error — never a fresh store.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tgdkit::instance::{Elem, Fact};
use tgdkit::logic::{parse_tgds, Schema, TgdSet};
use tgdkit::store::{DurableKb, KbConfig, StoreError};

fn test_set() -> TgdSet {
    let mut schema = Schema::default();
    let tgds = parse_tgds(&mut schema, "E(x,y), E(y,z) -> E(x,z).").unwrap();
    TgdSet::new(schema, tgds).unwrap()
}

fn e_fact(set: &TgdSet, x: u32, y: u32) -> Fact {
    Fact::new(set.schema().pred_id("E").unwrap(), vec![Elem(x), Elem(y)])
}

fn tmpdir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tgdkit-durable-generations-{tag}-{}-{n}",
        std::process::id()
    ))
}

fn no_compact_config() -> KbConfig {
    KbConfig {
        compact_wal_bytes: u64::MAX,
        ..KbConfig::default()
    }
}

fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot-{generation:06}.tgks"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation:06}.tgkw"))
}

/// Builds a generation-0 store with `n` acknowledged chain-edge batches.
fn build(dir: &Path, set: &TgdSet, n: u32) {
    let (mut kb, report) = DurableKb::open(dir, set, no_compact_config()).unwrap();
    assert!(report.fresh);
    for i in 0..n {
        kb.apply(&[e_fact(set, i, i + 1)], &[]).unwrap();
    }
}

#[test]
fn stray_wal_without_its_snapshot_is_ignored() {
    // A crash between "write the next generation's WAL" and "seal its
    // snapshot" leaves wal-000001 with no snapshot-000001. Recovery must
    // key off snapshots only: generation 0 still verifies and the stray
    // file changes nothing.
    let set = test_set();
    let dir = tmpdir("stray-wal");
    build(&dir, &set, 3);
    std::fs::copy(wal_path(&dir, 0), wal_path(&dir, 1)).unwrap();
    let (kb, report) = DurableKb::open(&dir, &set, no_compact_config()).unwrap();
    assert_eq!(report.generation, 0);
    assert_eq!(kb.seq(), 3);
    assert!(kb.holds(set.schema().pred_id("E").unwrap(), &[Elem(0), Elem(3)]));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_without_its_wal_recovers_the_snapshot_state() {
    // Deleting a generation's WAL behind the store's back loses the
    // batches after the snapshot — a single directory cannot tell a
    // deleted WAL from one that was never written — but recovery must
    // still land on the snapshot's exact state, typed and quiet, not
    // panic or invent frames. (Surviving this very scenario with zero
    // loss is what the replicated store is for.)
    let set = test_set();
    let dir = tmpdir("no-wal");
    build(&dir, &set, 3);
    std::fs::remove_file(wal_path(&dir, 0)).unwrap();
    let (kb, report) = DurableKb::open(&dir, &set, no_compact_config()).unwrap();
    assert_eq!(report.generation, 0);
    assert_eq!(report.replayed_batches, 0);
    assert_eq!(kb.seq(), 0, "generation 0's snapshot precedes every batch");
    assert_eq!(kb.chased().fact_count(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compacted_snapshot_without_its_wal_keeps_every_folded_batch() {
    // After compaction the snapshot *contains* the folded batches, so a
    // missing post-compaction WAL loses nothing that was compacted.
    let set = test_set();
    let dir = tmpdir("compacted-no-wal");
    let config = KbConfig {
        compact_wal_bytes: 1, // every apply compacts
        ..KbConfig::default()
    };
    let (mut kb, _) = DurableKb::open(&dir, &set, config).unwrap();
    for i in 0..3u32 {
        let report = kb.apply(&[e_fact(&set, i, i + 1)], &[]).unwrap();
        assert!(report.compacted);
    }
    let generation = kb.generation();
    assert!(generation >= 3);
    drop(kb);
    let _ = std::fs::remove_file(wal_path(&dir, generation));
    let (kb, report) = DurableKb::open(&dir, &set, config).unwrap();
    assert_eq!(report.generation, generation);
    assert_eq!(kb.seq(), 3, "compacted batches live in the snapshot");
    assert!(kb.holds(set.schema().pred_id("E").unwrap(), &[Elem(0), Elem(3)]));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_newest_generation_falls_back_to_an_older_pair() {
    // A damaged newest snapshot must fall back to the previous verifying
    // generation (kept here by hand — compaction normally removes it)
    // and replay that generation's WAL, reporting the fallback.
    let set = test_set();
    let dir = tmpdir("fallback");
    build(&dir, &set, 2);
    // Forge generation 1 as a *corrupt* copy of generation 0's snapshot.
    let mut snap = std::fs::read(snapshot_path(&dir, 0)).unwrap();
    let mid = snap.len() / 2;
    snap[mid] ^= 0xFF;
    std::fs::write(snapshot_path(&dir, 1), &snap).unwrap();
    let (kb, report) = DurableKb::open(&dir, &set, no_compact_config()).unwrap();
    assert_eq!(report.generation, 0, "fell back past the corrupt pair");
    assert!(report.snapshot_fallbacks >= 1);
    assert_eq!(kb.seq(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deleting_a_whole_generation_is_a_typed_error_not_a_reinit() {
    // Both files of the only generation vanish but the init marker
    // remains: recovery must refuse with a typed error. Re-initializing
    // would serve an empty closure where facts were acknowledged —
    // silently inverting entailment verdicts.
    let set = test_set();
    let dir = tmpdir("gone");
    build(&dir, &set, 2);
    std::fs::remove_file(snapshot_path(&dir, 0)).unwrap();
    std::fs::remove_file(wal_path(&dir, 0)).unwrap();
    let err = DurableKb::open(&dir, &set, no_compact_config()).unwrap_err();
    assert!(
        matches!(err, StoreError::Frame(_)),
        "expected a typed frame error, got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn orphan_wal_alone_is_a_typed_error_not_a_reinit() {
    // Every snapshot *and* the marker are gone but an acknowledged WAL
    // survives: the directory provably held a store, so open must error
    // rather than bury the orphan under a fresh generation 0.
    let set = test_set();
    let dir = tmpdir("orphan-wal");
    build(&dir, &set, 2);
    std::fs::remove_file(snapshot_path(&dir, 0)).unwrap();
    std::fs::remove_file(dir.join("store.tgkm")).unwrap();
    let err = DurableKb::open(&dir, &set, no_compact_config()).unwrap_err();
    assert!(
        matches!(err, StoreError::Frame(_)),
        "expected a typed frame error, got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
