//! Property-based tests for the columnar tuple store and the join
//! planner/executor: both are pure representation/ordering changes, so each
//! is checked against a straightforward reference model — a `BTreeSet` of
//! owned tuples for the store, and exhaustive assignment enumeration for
//! the hom search. The executor picks join algorithms (containment probe,
//! hash join, indexed nested loop, columnar scan) per plan step, so the
//! search properties are exercised both with nothing bound (scan/nested
//! loop heavy) and with partially pinned bindings over larger relations
//! (hash-join and containment-probe heavy).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use tgdkit::chase_crate::{group_by_body, group_by_body_keyed};
use tgdkit::hom::{for_each_hom_indexed, plan_join, plan_join_cached, Binding, InstanceIndex};
use tgdkit::instance::Relation;
use tgdkit::logic::{canonical_tgd_with_key, Atom, PredId, TgdVariantKey};
use tgdkit::prelude::*;

/// Random tuples with heavy repetition, so inserts collide often.
fn random_tuples(seed: u64, arity: usize, count: usize) -> Vec<Vec<Elem>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..arity)
                .map(|_| Elem(rng.random_range(0u32..4)))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// A [`Relation`] under a random insert/remove workload is
    /// observationally equivalent to a `BTreeSet<Vec<Elem>>`: same membership
    /// answers, same cardinality, same return values from the mutators, and
    /// — the load-bearing invariant for chase determinism — the same
    /// (lexicographic) iteration order.
    #[test]
    fn relation_matches_btreeset_model(
        seed in 0u64..1000,
        arity in 0usize..4,
        ops in 1usize..80,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37);
        let tuples = random_tuples(seed, arity, ops);
        let mut rel = Relation::new(arity);
        let mut model: BTreeSet<Vec<Elem>> = BTreeSet::new();
        for t in &tuples {
            if rng.random_bool(0.7) {
                prop_assert_eq!(rel.insert(t), model.insert(t.clone()));
            } else {
                prop_assert_eq!(rel.remove(t), model.remove(t));
            }
            prop_assert_eq!(rel.len(), model.len());
            prop_assert_eq!(rel.is_empty(), model.is_empty());
            // Canonical iteration order must match the tree's sorted order.
            let flat: Vec<Vec<Elem>> = rel.iter().map(|t| t.to_vec()).collect();
            let tree: Vec<Vec<Elem>> = model.iter().cloned().collect();
            prop_assert_eq!(flat, tree);
        }
        for t in &tuples {
            prop_assert_eq!(rel.contains(t), model.contains(t));
        }
        // The columns are the positional transpose of the sorted-row view
        // read back in physical order: same multiset per position, and
        // row-consistent under RowRef access.
        for t in rel.iter() {
            prop_assert_eq!(t.len(), arity);
            for pos in 0..arity {
                prop_assert_eq!(t.get(pos), t[pos]);
            }
        }
        let mut col_multiset: Vec<Vec<Elem>> = (0..arity)
            .map(|pos| rel.column(pos).to_vec())
            .collect();
        let mut model_multiset: Vec<Vec<Elem>> = (0..arity)
            .map(|pos| model.iter().map(|t| t[pos]).collect())
            .collect();
        for (a, b) in col_multiset.iter_mut().zip(model_multiset.iter_mut()) {
            a.sort_unstable();
            b.sort_unstable();
        }
        prop_assert_eq!(col_multiset, model_multiset);
        // Subset agrees with the model, and a clone is indistinguishable.
        let clone = rel.clone();
        prop_assert!(rel.is_subset(&clone) && clone.is_subset(&rel));
        prop_assert_eq!(clone.len(), rel.len());
        prop_assert_eq!(
            clone.iter().map(|t| t.to_vec()).collect::<Vec<_>>(),
            rel.iter().map(|t| t.to_vec()).collect::<Vec<_>>()
        );
    }

    /// The accountant-facing byte figures of the columnar layout depend only
    /// on the stored tuple *set* — never on insertion order, intermediate
    /// removals, or `Vec` growth history. This is what keeps
    /// `MemoryAccountant` trips and `memory/peak_bytes` deterministic across
    /// checkpoint trip→resume replays (resume re-inserts in sorted order).
    #[test]
    fn heap_accounting_is_construction_order_invariant(
        seed in 0u64..500,
        arity in 0usize..4,
        ops in 1usize..60,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51ab);
        let tuples = random_tuples(seed, arity, ops);
        let mut rel = Relation::new(arity);
        for t in &tuples {
            if rng.random_bool(0.7) {
                rel.insert(t);
            } else {
                rel.remove(t);
            }
        }
        // Rebuild from the canonical listing, insert-only.
        let mut rebuilt = Relation::new(arity);
        for t in rel.iter().map(|t| t.to_vec()).collect::<Vec<_>>() {
            rebuilt.insert(&t);
        }
        prop_assert_eq!(rebuilt.len(), rel.len());
        prop_assert_eq!(rebuilt.payload_bytes(), rel.payload_bytes());
        prop_assert_eq!(rebuilt.heap_bytes(), rel.heap_bytes());
        // Payload is exactly the logical element count.
        prop_assert_eq!(
            rel.payload_bytes(),
            rel.len() * arity * std::mem::size_of::<Elem>()
        );
    }

    /// `Instance::active_domain` (incrementally occurrence-counted) always
    /// equals the set recomputed from scratch over the current facts, across
    /// interleaved insertions and removals.
    #[test]
    fn active_domain_matches_recomputation(seed in 0u64..1000, ops in 1usize..60) {
        let schema = Schema::builder().pred("Z", 0).pred("P", 1).pred("R", 2).build();
        let preds: Vec<PredId> = schema.preds().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inst = Instance::new(schema.clone());
        for _ in 0..ops {
            let pred = preds[rng.random_range(0..preds.len())];
            let args: Vec<Elem> = (0..schema.arity(pred))
                .map(|_| Elem(rng.random_range(0u32..5)))
                .collect();
            if rng.random_bool(0.65) {
                inst.add_fact(pred, args);
            } else {
                inst.remove_fact(pred, &args);
            }
            let recomputed: BTreeSet<Elem> =
                inst.facts().flat_map(|f| f.args.clone()).collect();
            prop_assert_eq!(inst.active_domain(), &recomputed);
        }
    }

    /// The planner-steered hom search finds exactly the homomorphisms that
    /// exhaustive assignment enumeration finds — the plan reorders the
    /// search, never its answer — and the answer set is invariant under
    /// syntactic permutation of the conjunction's atoms.
    #[test]
    fn planned_search_matches_exhaustive_reference(
        rule_seed in 0u64..500,
        data_seed in 0u64..500,
        atom_count in 1usize..4,
        facts in 0usize..14,
    ) {
        let schema = Schema::builder().pred("P", 1).pred("R", 2).build();
        let preds: Vec<PredId> = schema.preds().collect();
        let mut rng = StdRng::seed_from_u64(rule_seed);
        // Random conjunction with dense variable indices.
        let raw: Vec<(PredId, Vec<u32>)> = (0..atom_count)
            .map(|_| {
                let pred = preds[rng.random_range(0..preds.len())];
                let args = (0..schema.arity(pred))
                    .map(|_| rng.random_range(0u32..3))
                    .collect();
                (pred, args)
            })
            .collect();
        let mut used: Vec<u32> = raw.iter().flat_map(|(_, a)| a.clone()).collect();
        used.sort_unstable();
        used.dedup();
        let atoms: Vec<Atom<Var>> = raw
            .iter()
            .map(|(pred, args)| {
                Atom::new(
                    *pred,
                    args.iter()
                        .map(|v| Var(used.binary_search(v).unwrap() as u32))
                        .collect(),
                )
            })
            .collect();
        let num_vars = used.len();

        let mut data_rng = StdRng::seed_from_u64(data_seed);
        let mut inst = Instance::new(schema.clone());
        for _ in 0..facts {
            let pred = preds[data_rng.random_range(0..preds.len())];
            let args = (0..schema.arity(pred))
                .map(|_| Elem(data_rng.random_range(0u32..4)))
                .collect();
            inst.add_fact(pred, args);
        }
        let index = InstanceIndex::new(&inst);
        let domain: Vec<Elem> = inst.active_domain().iter().copied().collect();

        let collect = |atoms: &[Atom<Var>]| {
            let fixed: Binding = vec![None; num_vars];
            let mut homs: BTreeSet<Vec<Option<Elem>>> = BTreeSet::new();
            for_each_hom_indexed(atoms, num_vars, &index, &fixed, &mut |b| {
                homs.insert(b.clone());
                ControlFlow::Continue(())
            });
            homs
        };
        let found = collect(&atoms);

        // Exhaustive reference: every assignment of the (dense) variables to
        // active-domain elements that satisfies all atoms.
        let mut expected: BTreeSet<Vec<Option<Elem>>> = BTreeSet::new();
        let mut assignment = vec![0usize; num_vars];
        'assignments: loop {
            if !domain.is_empty() || num_vars == 0 {
                let binding: Vec<Option<Elem>> =
                    assignment.iter().map(|&i| Some(domain[i])).collect();
                let satisfied = atoms.iter().all(|a| {
                    let tuple: Vec<Elem> = a
                        .args
                        .iter()
                        .map(|v| binding[v.index()].unwrap())
                        .collect();
                    inst.contains_fact(a.pred, &tuple)
                });
                if satisfied {
                    expected.insert(binding);
                }
            }
            let mut pos = 0;
            loop {
                if pos == num_vars || domain.is_empty() {
                    break 'assignments;
                }
                assignment[pos] += 1;
                if assignment[pos] < domain.len() {
                    break;
                }
                assignment[pos] = 0;
                pos += 1;
            }
        }
        prop_assert_eq!(&found, &expected);

        // Atom order is syntax; the planner must make the answer order-free.
        let mut permuted = atoms.clone();
        permuted.reverse();
        prop_assert_eq!(collect(&permuted), expected);

        // The plan itself is a permutation of the atom indices.
        let plan = plan_join(&atoms, &index, &vec![false; num_vars]);
        let mut sorted = plan.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..atoms.len()).collect::<Vec<_>>());
    }

    /// Every join-algorithm tier of the executor agrees with exhaustive
    /// assignment enumeration. Relations here grow past the hash-join row
    /// threshold and a random subset of variables is pinned up front, so the
    /// executor is pushed through its containment-probe and build/probe
    /// hash-join tiers; the unpinned runs cover indexed nested loop and the
    /// columnar repeated-variable scan. A zero-arity predicate and empty
    /// relations ride along as edge cases. Re-asking the identical query
    /// must hit the cross-run plan cache (same `Arc` plan), stay a valid
    /// permutation, and return the identical answer set.
    #[test]
    fn join_algorithms_agree_with_reference(
        rule_seed in 0u64..400,
        data_seed in 0u64..400,
        atom_count in 1usize..4,
        facts in 0usize..80,
        pin_bits in 0u32..64,
    ) {
        let schema = Schema::builder()
            .pred("Z", 0)
            .pred("P", 1)
            .pred("R", 2)
            .pred("S", 3)
            .build();
        let preds: Vec<PredId> = schema.preds().collect();
        let mut rng = StdRng::seed_from_u64(rule_seed);
        let raw: Vec<(PredId, Vec<u32>)> = (0..atom_count)
            .map(|_| {
                let pred = preds[rng.random_range(0..preds.len())];
                let args = (0..schema.arity(pred))
                    .map(|_| rng.random_range(0u32..4))
                    .collect();
                (pred, args)
            })
            .collect();
        let mut used: Vec<u32> = raw.iter().flat_map(|(_, a)| a.clone()).collect();
        used.sort_unstable();
        used.dedup();
        let atoms: Vec<Atom<Var>> = raw
            .iter()
            .map(|(pred, args)| {
                Atom::new(
                    *pred,
                    args.iter()
                        .map(|v| Var(used.binary_search(v).unwrap() as u32))
                        .collect(),
                )
            })
            .collect();
        let num_vars = used.len();

        let mut data_rng = StdRng::seed_from_u64(data_seed);
        let mut inst = Instance::new(schema.clone());
        for _ in 0..facts {
            let pred = preds[data_rng.random_range(0..preds.len())];
            let args = (0..schema.arity(pred))
                .map(|_| Elem(data_rng.random_range(0u32..4)))
                .collect();
            inst.add_fact(pred, args);
        }
        let index = InstanceIndex::new(&inst);
        let domain: Vec<Elem> = inst.active_domain().iter().copied().collect();

        // Pin a subset of variables to concrete elements — occasionally one
        // outside the active domain, which must simply produce no answers
        // from any atom mentioning it.
        let fixed: Binding = (0..num_vars)
            .map(|v| {
                if pin_bits >> (v % 6) & 1 == 1 {
                    Some(Elem(rng.random_range(0u32..5)))
                } else {
                    None
                }
            })
            .collect();

        let collect = |atoms: &[Atom<Var>]| {
            let mut homs: BTreeSet<Vec<Option<Elem>>> = BTreeSet::new();
            for_each_hom_indexed(atoms, num_vars, &index, &fixed, &mut |b| {
                homs.insert(b.clone());
                ControlFlow::Continue(())
            });
            homs
        };
        let found = collect(&atoms);

        // Exhaustive reference: unpinned variables range over the active
        // domain, pinned ones over their single value.
        let choices: Vec<Vec<Elem>> = fixed
            .iter()
            .map(|b| match b {
                Some(e) => vec![*e],
                None => domain.clone(),
            })
            .collect();
        let mut expected: BTreeSet<Vec<Option<Elem>>> = BTreeSet::new();
        let mut assignment = vec![0usize; num_vars];
        'assignments: loop {
            if choices.iter().all(|c| !c.is_empty()) {
                let binding: Vec<Option<Elem>> = assignment
                    .iter()
                    .zip(&choices)
                    .map(|(&i, c)| Some(c[i]))
                    .collect();
                let satisfied = atoms.iter().all(|a| {
                    let tuple: Vec<Elem> = a
                        .args
                        .iter()
                        .map(|v| binding[v.index()].unwrap())
                        .collect();
                    inst.contains_fact(a.pred, &tuple)
                });
                if satisfied {
                    expected.insert(binding);
                }
            }
            let mut pos = 0;
            loop {
                if pos == num_vars || choices[pos].is_empty() {
                    break 'assignments;
                }
                assignment[pos] += 1;
                if assignment[pos] < choices[pos].len() {
                    break;
                }
                assignment[pos] = 0;
                pos += 1;
            }
        }
        prop_assert_eq!(&found, &expected);

        // Atom order is syntax: permuting the conjunction must not change
        // the answer set, whatever mix of algorithms the permuted plan uses.
        let mut permuted = atoms.clone();
        permuted.reverse();
        prop_assert_eq!(collect(&permuted), expected.clone());

        // Identical query again: the cross-run plan cache must hand back the
        // very same plan object, the plan must still be a permutation of the
        // atom indices, and the answers must be unchanged.
        let bound: Vec<bool> = fixed.iter().map(|b| b.is_some()).collect();
        let first = plan_join_cached(&atoms, &index, &bound);
        let second = plan_join_cached(&atoms, &index, &bound);
        prop_assert!(std::sync::Arc::ptr_eq(&first, &second));
        let mut order = first.order();
        order.sort_unstable();
        prop_assert_eq!(order, (0..atoms.len()).collect::<Vec<_>>());
        prop_assert_eq!(collect(&atoms), expected);
    }

    /// Grouping by precomputed enumeration keys ([`group_by_body_keyed`])
    /// yields exactly the groups of the canonicalizing path
    /// ([`group_by_body`]) on the same canonical candidates: same group
    /// count, same member indices, same order.
    #[test]
    fn keyed_grouping_matches_canonicalizing_grouping(seed in 0u64..300) {
        let mut schema = Schema::default();
        let text = "R(x,y) -> T(x). R(x,y) -> T(y). R(x,y) -> exists z : R(y,z). \
                    T(x) -> exists z : R(x,z). R(x,x) -> T(x). T(x) -> T(x).";
        let base = parse_tgds(&mut schema, text).unwrap();
        // A shuffled, duplicated pool of canonical forms.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pool: Vec<(Tgd, TgdVariantKey)> = Vec::new();
        for _ in 0..20 {
            let t = &base[rng.random_range(0..base.len())];
            pool.push(canonical_tgd_with_key(t));
        }
        let candidates: Vec<Tgd> = pool.iter().map(|(t, _)| t.clone()).collect();
        let keys: Vec<TgdVariantKey> = pool.iter().map(|(_, k)| k.clone()).collect();

        let keyed = group_by_body_keyed(&candidates, &keys);
        let plain = group_by_body(&candidates);
        prop_assert_eq!(keyed.len(), plain.len());
        for (g_keyed, g_plain) in keyed.iter().zip(&plain) {
            let a: Vec<usize> = g_keyed.members.iter().map(|(i, _, _)| *i).collect();
            let b: Vec<usize> = g_plain.members.iter().map(|(i, _, _)| *i).collect();
            prop_assert_eq!(a, b);
        }
    }
}
