//! Durable-store property tests: for ANY batch sequence and ANY crash
//! point, reopening the store reconstructs exactly the acknowledged
//! prefix — byte-identical instances, identical sequence numbers — and
//! arbitrary on-disk damage (truncation at any byte, any single-bit flip)
//! is contained by recovery: the verified prefix survives, the damage is
//! truncated away, and a store whose every snapshot is corrupt surfaces a
//! typed error instead of silently re-initializing (which would invert
//! verdicts).
//!
//! CI runs this file under the same `TGDKIT_FAULTS_SEED` matrix as
//! `proptest_faults`, so the injected torn-write/fsync-failure schedules
//! vary across matrix legs.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use tgdkit::chase_crate::faults::{env_seed, FaultPlan, FaultSite};
use tgdkit::chase_crate::CancelToken;
use tgdkit::instance::{Elem, Fact, Instance};
use tgdkit::logic::{parse_tgds, Schema, TgdSet};
use tgdkit::store::{DurableKb, KbConfig, StoreError};

fn test_set() -> TgdSet {
    let mut schema = Schema::default();
    let tgds = parse_tgds(
        &mut schema,
        "E(x,y), E(y,z) -> E(x,z). P(x) -> exists w : E(x,w).",
    )
    .unwrap();
    TgdSet::new(schema, tgds).unwrap()
}

/// A unique scratch directory per case (tests run concurrently).
fn tmpdir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tgdkit-proptest-durable-{tag}-{}-{n}",
        std::process::id()
    ))
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Deterministic insert/retract batches over a six-constant domain. Every
/// batch carries at least one insert so each WAL frame is nonempty work;
/// retracts are drawn from the same space (retracting an absent fact is a
/// legal no-op, retracting a present one forces the re-chase path).
fn gen_batches(set: &TgdSet, seed: u64, n: usize) -> Vec<(Vec<Fact>, Vec<Fact>)> {
    let e = set.schema().pred_id("E").unwrap();
    let p = set.schema().pred_id("P").unwrap();
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
    let fact = |state: &mut u64| {
        if lcg(state).is_multiple_of(3) {
            Fact::new(p, vec![Elem((lcg(state) % 6) as u32)])
        } else {
            Fact::new(
                e,
                vec![Elem((lcg(state) % 6) as u32), Elem((lcg(state) % 6) as u32)],
            )
        }
    };
    (0..n)
        .map(|_| {
            let inserts = (0..1 + (lcg(&mut state) % 3) as usize)
                .map(|_| fact(&mut state))
                .collect();
            let retracts = (0..(lcg(&mut state) % 2) as usize)
                .map(|_| fact(&mut state))
                .collect();
            (inserts, retracts)
        })
        .collect()
}

/// No auto-compaction: these properties reason about WAL byte offsets, so
/// the log must stay in one generation-0 file.
fn no_compact_config() -> KbConfig {
    KbConfig {
        compact_wal_bytes: u64::MAX,
        ..KbConfig::default()
    }
}

/// The expected state ladder: `states[i]` is `(base, chased, seq)` after
/// the first `i` batches, and `offsets[i]` is the WAL length once batch
/// `i` is acknowledged (`offsets[0] == 0`).
struct Ladder {
    offsets: Vec<u64>,
    states: Vec<(Instance, Instance, u64)>,
}

fn build_store(dir: &Path, set: &TgdSet, batches: &[(Vec<Fact>, Vec<Fact>)]) -> Ladder {
    let (mut kb, report) = DurableKb::open(dir, set, no_compact_config()).unwrap();
    assert!(report.fresh);
    let mut offsets = vec![0u64];
    let mut states = vec![(kb.base().clone(), kb.chased().clone(), 0u64)];
    for (inserts, retracts) in batches {
        kb.apply(inserts, retracts).unwrap();
        offsets.push(kb.wal_bytes());
        states.push((kb.base().clone(), kb.chased().clone(), kb.seq()));
    }
    Ladder { offsets, states }
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal-000000.tgkw")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property 1 (crash anywhere): truncating the WAL at ANY byte — the
    /// on-disk effect of a crash mid-append — recovers exactly the state
    /// after the last batch whose frame survived whole, counts one
    /// damage event iff the cut straddles a frame, and a second reopen is
    /// a clean no-damage replay of the same state.
    #[test]
    fn crash_at_any_byte_recovers_the_acknowledged_prefix(
        seed in 0u64..200,
        n_batches in 1usize..7,
        cut_pos in 0usize..100_000,
    ) {
        let set = test_set();
        let dir = tmpdir("crash");
        let batches = gen_batches(&set, seed, n_batches);
        let ladder = build_store(&dir, &set, &batches);

        let total = *ladder.offsets.last().unwrap();
        let cut = (cut_pos as u64) % (total + 1);
        let wal = wal_path(&dir);
        let file = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        // The last batch whose frame lies entirely below the cut.
        let j = ladder.offsets.iter().rposition(|&o| o <= cut).unwrap();
        let at_boundary = ladder.offsets[j] == cut;
        let (expect_base, expect_chased, expect_seq) = &ladder.states[j];

        let (kb, report) = DurableKb::open(&dir, &set, no_compact_config()).unwrap();
        prop_assert_eq!(kb.seq(), *expect_seq, "cut {} recovered the wrong prefix", cut);
        prop_assert_eq!(kb.base(), expect_base);
        prop_assert_eq!(kb.chased(), expect_chased, "restart ≢ uninterrupted at cut {}", cut);
        prop_assert_eq!(report.replayed_batches, j as u64);
        prop_assert_eq!(report.truncated_frames, u64::from(!at_boundary));
        drop(kb);

        // Recovery is idempotent: the damage is physically gone.
        let (kb, report) = DurableKb::open(&dir, &set, no_compact_config()).unwrap();
        prop_assert_eq!(report.truncated_frames, 0);
        prop_assert_eq!(kb.chased(), expect_chased);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Property 2 (bit rot): flipping ANY single bit of the WAL never
    /// panics and never invents state — recovery lands exactly on the
    /// state before the damaged frame, truncating it and everything
    /// after (a later frame cannot be trusted once its predecessor is
    /// gone: sequence numbers would no longer chain).
    #[test]
    fn any_single_bit_flip_truncates_at_the_damaged_frame(
        seed in 0u64..200,
        n_batches in 1usize..7,
        flip_pos in 0usize..100_000,
        flip_bit in 0u8..8,
    ) {
        let set = test_set();
        let dir = tmpdir("flip");
        let batches = gen_batches(&set, seed, n_batches);
        let ladder = build_store(&dir, &set, &batches);

        let total = *ladder.offsets.last().unwrap();
        let i = (flip_pos as u64) % total;
        let wal = wal_path(&dir);
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes[i as usize] ^= 1 << flip_bit;
        std::fs::write(&wal, &bytes).unwrap();

        // The frame containing byte i starts at offsets[j]; state j is
        // what must survive.
        let j = ladder.offsets.iter().rposition(|&o| o <= i).unwrap();
        let (expect_base, expect_chased, expect_seq) = &ladder.states[j];

        let (kb, report) = DurableKb::open(&dir, &set, no_compact_config()).unwrap();
        prop_assert_eq!(kb.seq(), *expect_seq, "flip at byte {} bit {}", i, flip_bit);
        prop_assert_eq!(kb.base(), expect_base);
        prop_assert_eq!(kb.chased(), expect_chased);
        prop_assert_eq!(report.truncated_frames, 1, "the flip must be seen as damage");
        prop_assert_eq!(report.replayed_batches, j as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Property 3 (no silent re-init): when the store's ONLY snapshot is
    /// corrupted — any single-bit flip — open refuses with a typed frame
    /// error. Silently starting over would change verdicts, the one thing
    /// the store may never do.
    #[test]
    fn a_corrupt_sole_snapshot_is_a_typed_error_not_a_reinit(
        seed in 0u64..100,
        flip_pos in 0usize..100_000,
        flip_bit in 0u8..8,
    ) {
        let set = test_set();
        let dir = tmpdir("snap");
        let batches = gen_batches(&set, seed, 3);
        let _ = build_store(&dir, &set, &batches);
        // Fold the WAL into generation 1, so all state lives in one
        // snapshot and an empty WAL.
        let (mut kb, _) = DurableKb::open(&dir, &set, no_compact_config()).unwrap();
        kb.compact().unwrap();
        prop_assert_eq!(kb.generation(), 1);
        drop(kb);

        let snap = dir.join("snapshot-000001.tgks");
        let mut bytes = std::fs::read(&snap).unwrap();
        let i = flip_pos % bytes.len();
        bytes[i] ^= 1 << flip_bit;
        std::fs::write(&snap, &bytes).unwrap();

        match DurableKb::open(&dir, &set, no_compact_config()) {
            Err(StoreError::Frame(_)) => {}
            Err(other) => prop_assert!(false, "expected a frame error, got {other}"),
            Ok((kb, report)) => prop_assert!(
                false,
                "corrupt snapshot opened anyway (flip at byte {i} bit {flip_bit}): \
                 seq {} fresh {}", kb.seq(), report.fresh
            ),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Property 4 (injected faults): under a seeded schedule of torn
    /// writes and fsync failures, exactly the *acknowledged* applies
    /// survive a reopen — a failed apply is never partially visible, and
    /// a shadow store fed only the acknowledged batches reaches the
    /// byte-identical state.
    #[test]
    fn faulty_appends_leave_exactly_the_acknowledged_state(
        seed in 0u64..100,
        schedule in 0u64..6,
    ) {
        let set = test_set();
        let dir = tmpdir("fault");
        let shadow_dir = tmpdir("fault-shadow");
        let batches = gen_batches(&set, seed, 6);

        let site = if schedule % 2 == 0 {
            FaultSite::WalTornWrite
        } else {
            FaultSite::FsyncFail
        };
        let plan_seed = env_seed().wrapping_mul(1000) + schedule;
        let token = CancelToken::with_faults(FaultPlan::only(plan_seed, site, 3));

        let (mut kb, _) = DurableKb::open(&dir, &set, no_compact_config()).unwrap();
        let mut acknowledged = Vec::new();
        for (inserts, retracts) in &batches {
            match kb.apply_governed(inserts, retracts, &token) {
                Ok(_) => acknowledged.push((inserts.clone(), retracts.clone())),
                Err(StoreError::TornWrite { .. }) => prop_assert!(kb.is_wedged()),
                Err(StoreError::Wedged) | Err(StoreError::FsyncFailed { .. }) => {}
                Err(other) => prop_assert!(false, "unexpected apply error: {other}"),
            }
        }
        prop_assert_eq!(kb.seq(), acknowledged.len() as u64);
        drop(kb);

        let (recovered, _) = DurableKb::open(&dir, &set, no_compact_config()).unwrap();
        let (mut shadow, _) = DurableKb::open(&shadow_dir, &set, no_compact_config()).unwrap();
        for (inserts, retracts) in &acknowledged {
            shadow.apply(inserts, retracts).unwrap();
        }
        prop_assert_eq!(recovered.seq(), shadow.seq());
        prop_assert_eq!(recovered.base(), shadow.base());
        prop_assert_eq!(
            recovered.chased(),
            shadow.chased(),
            "recovered state diverged from the acknowledged prefix"
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&shadow_dir);
    }
}
