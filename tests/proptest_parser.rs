//! Property-based tests of the surface syntax and canonicalization.

use proptest::prelude::*;
use tgdkit::core::workload::{generate_set, Family, WorkloadParams};
use tgdkit::logic::{canonical_tgd, same_up_to_renaming, simplify_tgd, tgd_variant_key};
use tgdkit::prelude::*;

fn random_set(seed: u64, existentials: usize) -> TgdSet {
    generate_set(
        &WorkloadParams {
            predicates: 3,
            max_arity: 3,
            rules: 3,
            body_atoms: 2,
            head_atoms: 2,
            universals: 3,
            existentials,
        },
        Family::Unrestricted,
        seed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Display output reparses to the identical tgd.
    #[test]
    fn display_parse_roundtrip(seed in 0u64..2000, existentials in 0usize..3) {
        let set = random_set(seed, existentials);
        let mut schema = set.schema().clone();
        for tgd in set.tgds() {
            let rendered = tgd.display(&schema).to_string();
            let reparsed = parse_tgd(&mut schema, &rendered)
                .unwrap_or_else(|e| panic!("reparse of {rendered:?} failed: {e}"));
            prop_assert_eq!(tgd, &reparsed, "roundtrip changed {}", rendered);
        }
    }

    /// Canonicalization is idempotent and identifies shuffled variants.
    #[test]
    fn canonicalization_identifies_variants(seed in 0u64..2000, perm_seed in 0u64..64) {
        let set = random_set(seed, 1);
        for tgd in set.tgds() {
            let canon = canonical_tgd(tgd);
            prop_assert_eq!(&canon, &canonical_tgd(&canon));
            prop_assert!(same_up_to_renaming(tgd, &canon));

            // Shuffle atoms deterministically from perm_seed and rename
            // variables by an offset permutation.
            let rotate = |atoms: &[tgdkit::logic::Atom<Var>]| -> Vec<tgdkit::logic::Atom<Var>> {
                let mut v = atoms.to_vec();
                let len = v.len();
                if len > 0 {
                    v.rotate_left((perm_seed as usize) % len);
                }
                v
            };
            let n = tgd.var_count() as u32;
            let renamed_body: Vec<_> = rotate(tgd.body())
                .iter()
                .map(|a| a.map(|v| Var((v.0 + perm_seed as u32) % n + n)))
                .collect();
            let renamed_head: Vec<_> = rotate(tgd.head())
                .iter()
                .map(|a| a.map(|v| Var((v.0 + perm_seed as u32) % n + n)))
                .collect();
            if let Ok(variant) = Tgd::new(renamed_body, renamed_head) {
                // Only a true variant when the renaming respected the
                // universal/existential split; `Tgd::new` re-derives the
                // split from the shuffled body, so check classes first.
                if variant.universal_count() == tgd.universal_count() {
                    prop_assert!(
                        same_up_to_renaming(tgd, &variant),
                        "variant not identified:\n  {:?}\n  {:?}",
                        tgd,
                        variant
                    );
                }
            }
        }
    }

    /// Variant keys agree exactly with `same_up_to_renaming` on pairs from
    /// the same generator (no false merges).
    #[test]
    fn variant_keys_are_injective_on_distinct_classes(a in 0u64..500, b in 0u64..500) {
        let set_a = random_set(a, 1);
        let set_b = random_set(b, 1);
        for ta in set_a.tgds() {
            for tb in set_b.tgds() {
                let same_key = tgd_variant_key(ta) == tgd_variant_key(tb);
                prop_assert_eq!(
                    same_key,
                    same_up_to_renaming(ta, tb),
                    "key/variant disagreement on {:?} vs {:?}", ta, tb
                );
            }
        }
    }

    /// Simplification preserves logical equivalence. Divergent chases are
    /// cut short by a small budget: equivalence may then come back Unknown,
    /// but must never be Disproved.
    #[test]
    fn simplify_preserves_equivalence(seed in 0u64..500) {
        let set = random_set(seed, 1);
        let schema = set.schema();
        let budget = ChaseBudget {
            max_facts: 400,
            max_rounds: 12,
            max_bytes: usize::MAX,
        };
        for tgd in set.tgds() {
            match simplify_tgd(tgd) {
                Some(simplified) => {
                    prop_assert_ne!(
                        equivalent(schema, std::slice::from_ref(tgd), &[simplified], budget),
                        Entailment::Disproved
                    );
                }
                None => {
                    // A tautology: entailed by the empty set.
                    prop_assert_eq!(
                        entails(schema, &[], tgd, budget),
                        Entailment::Proved
                    );
                }
            }
        }
    }

    /// Parsing instance literals roundtrips through Display.
    #[test]
    fn instance_display_roundtrip(seed in 0u64..1000, size in 0usize..5) {
        let schema = Schema::builder().pred("R", 2).pred("T", 1).build();
        let i = InstanceGen::new(schema.clone(), seed).generate(size, 0.4);
        // Name every active element so Display output is parseable.
        let mut named = i.clone();
        named.shrink_dom_to_active();
        for e in named.active_domain().clone() {
            named.set_name(e, format!("c{}", e.0));
        }
        let rendered = named.to_string();
        let mut reparse_schema = schema.clone();
        let reparsed = parse_instance(&mut reparse_schema, &rendered).unwrap();
        prop_assert!(are_isomorphic(&named, &reparsed));
    }
}
