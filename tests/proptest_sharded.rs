//! Sharded-chase property tests: for any tgd set, any start instance, and
//! any shard count 1–8, the hash-partitioned engine is *indistinguishable*
//! from the unsharded engine — byte-identical instances, identical
//! outcomes/rounds/nulls, identical normalized statistics — and the
//! shard-aware checkpoint frames round-trip trip → encode → decode →
//! resume back onto the uninterrupted run.
//!
//! CI runs this file under the same `TGDKIT_FAULTS_SEED` matrix as
//! `proptest_faults`, so the injected-trip test covers a different fault
//! schedule per matrix leg.

use proptest::prelude::*;
use tgdkit::chase_crate::faults::{env_seed, FaultPlan, FaultSite};
use tgdkit::core::workload::{generate_set, Family, WorkloadParams};
use tgdkit::prelude::*;

fn random_set(seed: u64, rules: usize, existentials: usize) -> TgdSet {
    let params = WorkloadParams {
        predicates: 3,
        max_arity: 2,
        rules,
        body_atoms: 2,
        head_atoms: 1,
        universals: 2,
        existentials,
    };
    generate_set(&params, Family::Guarded, seed)
}

/// Unlimited byte budget: the sharded engine's resident-heap figure sums
/// per-shard dedup maps and so differs from the unsharded layout; byte
/// budgets are therefore pinned open and `mem_peak_bytes` is zeroed out of
/// the stats comparison below.
const BUDGET: ChaseBudget = ChaseBudget {
    max_facts: 4_000,
    max_rounds: 16,
    max_bytes: usize::MAX,
};

/// Normalized stats with the engine-dependent heap-peak figure removed.
fn comparable(stats: &ChaseStats) -> ChaseStats {
    let mut n = stats.normalized();
    n.mem_peak_bytes = 0;
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole equivalence: at every shard count 1–8, the sharded
    /// chase reproduces the unsharded (legacy serial) chase bit-for-bit —
    /// same instance, outcome, rounds, nulls, and normalized stats.
    #[test]
    fn sharded_chase_equals_unsharded(
        set_seed in 0u64..300,
        data_seed in 0u64..300,
        rules in 1usize..4,
        existentials in 0usize..2,
        shards in 1usize..9,
    ) {
        let set = random_set(set_seed, rules, existentials);
        let start = InstanceGen::new(set.schema().clone(), data_seed).generate(4, 0.35);
        let legacy = chase_configured(
            &start, set.tgds(), ChaseVariant::Restricted, BUDGET, TriggerSearch::Serial,
        );
        let sharded = chase_sharded(&start, set.tgds(), ChaseVariant::Restricted, BUDGET, shards);
        prop_assert_eq!(sharded.outcome, legacy.outcome);
        prop_assert_eq!(sharded.rounds, legacy.rounds);
        prop_assert_eq!(&sharded.nulls, &legacy.nulls);
        prop_assert_eq!(
            &sharded.instance, &legacy.instance,
            "sharded chase at {} shards diverged", shards
        );
        prop_assert_eq!(comparable(&sharded.stats), comparable(&legacy.stats));
    }

    /// The oblivious variant holds to the same equivalence (its
    /// fired-trigger memory keys on the universal binding, which the
    /// deduped trigger runs must reproduce in the same order).
    #[test]
    fn sharded_oblivious_chase_equals_unsharded(
        set_seed in 0u64..200,
        data_seed in 0u64..200,
        shards in 1usize..9,
    ) {
        let set = random_set(set_seed, 2, 0);
        let start = InstanceGen::new(set.schema().clone(), data_seed).generate(3, 0.35);
        let legacy = chase_configured(
            &start, set.tgds(), ChaseVariant::Oblivious, BUDGET, TriggerSearch::Serial,
        );
        let sharded = chase_sharded(&start, set.tgds(), ChaseVariant::Oblivious, BUDGET, shards);
        prop_assert_eq!(sharded.outcome, legacy.outcome);
        prop_assert_eq!(&sharded.instance, &legacy.instance);
        prop_assert_eq!(comparable(&sharded.stats), comparable(&legacy.stats));
    }

    /// Shard-aware checkpointing: trip the round budget at ANY round,
    /// round-trip the frame through encode/decode (the frame carries the
    /// shard count), resume — and land exactly on the uninterrupted
    /// sharded run, which itself equals the unsharded run.
    #[test]
    fn sharded_trip_resume_is_invisible(
        set_seed in 0u64..300,
        rules in 1usize..4,
        shards in 2usize..9,
        trip in 0usize..16,
    ) {
        let set = random_set(set_seed, rules, 1);
        let start = InstanceGen::new(set.schema().clone(), set_seed + 7).generate(4, 0.35);
        let token = CancelToken::new();
        let (full, _) = chase_sharded_checkpointing(
            &start, set.tgds(), ChaseVariant::Restricted, BUDGET, shards, &token,
        );
        // A reference run that itself tripped the budget would make the
        // resume legitimately suspend again; pin the property to runs
        // that complete.
        prop_assume!(full.outcome == ChaseOutcome::Terminated);
        prop_assume!(full.stats.rounds > 0);
        let j = trip % full.stats.rounds;
        let (tripped, cp) = chase_sharded_checkpointing(
            &start,
            set.tgds(),
            ChaseVariant::Restricted,
            ChaseBudget { max_rounds: j, ..BUDGET },
            shards,
            &token,
        );
        prop_assert_eq!(tripped.outcome, ChaseOutcome::BudgetExceeded);
        let cp = cp.expect("budget trip must be resumable");
        // The frame round-trips with its shard dimension intact: the
        // decoded checkpoint equals the captured one, and resuming it
        // (which re-partitions at the frame's shard count) completes
        // exactly as the uninterrupted sharded run did.
        let decoded = ChaseCheckpoint::decode(&cp.encode(), set.schema()).unwrap();
        prop_assert_eq!(&decoded, cp.as_ref());
        let (resumed, after) = chase_resume(
            &decoded, set.tgds(), BUDGET, TriggerSearch::Serial, &token,
        ).unwrap();
        prop_assert!(after.is_none(), "resume under the full budget completes");
        prop_assert_eq!(resumed.outcome, full.outcome);
        prop_assert_eq!(&resumed.instance, &full.instance, "trip at round {} is visible", j);
        prop_assert_eq!(comparable(&resumed.stats), comparable(&full.stats));
        prop_assert_eq!(resumed.stats.resumes, 1);
    }

    /// Injected memory trips (the `TGDKIT_FAULTS_SEED` arm): a spurious
    /// `MemBudgetTrip` mid-run suspends the sharded chase resumably, and a
    /// clean-token resume reproduces the clean sharded run byte-for-byte.
    #[test]
    fn sharded_injected_trip_resume_is_invisible(
        set_seed in 0u64..200,
        shards in 2usize..7,
        schedule in 0u64..6,
    ) {
        let set = random_set(set_seed, 2, 1);
        let start = InstanceGen::new(set.schema().clone(), set_seed + 11).generate(4, 0.35);
        let clean = CancelToken::new();
        let (full, _) = chase_sharded_checkpointing(
            &start, set.tgds(), ChaseVariant::Restricted, BUDGET, shards, &clean,
        );
        prop_assume!(full.outcome == ChaseOutcome::Terminated);
        let seed = env_seed().wrapping_mul(1000) + schedule;
        let token = CancelToken::with_faults(FaultPlan::only(seed, FaultSite::MemBudgetTrip, 3));
        let (tripped, cp) = chase_sharded_checkpointing(
            &start, set.tgds(), ChaseVariant::Restricted, BUDGET, shards, &token,
        );
        if tripped.outcome != ChaseOutcome::MemoryExceeded {
            // The schedule never fired inside this run; nothing to resume.
            return Ok(());
        }
        let cp = cp.expect("memory trip must be resumable");
        let (resumed, _) = chase_resume(
            &cp, set.tgds(), BUDGET, TriggerSearch::Serial, &clean,
        ).unwrap();
        prop_assert_eq!(resumed.outcome, full.outcome);
        prop_assert_eq!(&resumed.instance, &full.instance);
        prop_assert_eq!(comparable(&resumed.stats), comparable(&full.stats));
    }

    /// Partitioning is a partition: every fact of the source instance
    /// lands on exactly the shard `shard_of` names, counts are preserved,
    /// and merging reassembles the source exactly.
    #[test]
    fn partition_routes_totally_and_merges_back(
        data_seed in 0u64..500,
        shards in 1usize..9,
    ) {
        let set = random_set(17, 3, 1);
        let inst = InstanceGen::new(set.schema().clone(), data_seed).generate(6, 0.5);
        let sharded = ShardedInstance::partition(&inst, shards);
        prop_assert_eq!(sharded.shard_count(), shards);
        prop_assert_eq!(sharded.fact_count(), inst.fact_count());
        for s in 0..shards {
            for fact in sharded.shard(s).facts() {
                prop_assert_eq!(shard_of(fact.pred, &fact.args, shards), s);
                prop_assert!(sharded.contains_fact(fact.pred, &fact.args));
            }
        }
        prop_assert_eq!(sharded.merge(), inst);
    }
}
