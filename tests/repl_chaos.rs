//! The kill-a-replica chaos smoke (run by CI in the `TGDKIT_FAULTS_SEED`
//! matrix): one replica of a quorum-2-of-3 store is killed mid-drive —
//! its handle dropped cold, the in-process analogue of SIGKILLing the
//! replica node — and the harness asserts that
//!
//! 1. quorum writes keep flowing while the replica is down (every batch
//!    in the drive is acknowledged, none is refused or lost),
//! 2. the rejoined replica is repaired back to **byte-identity** with
//!    the survivors (file-for-file equality, not just logical state),
//! 3. a restart afterwards recovers the full acknowledged prefix.
//!
//! A second schedule drives kills through the injected
//! `FaultSite::ReplicaKill` so the kill lands *inside* an append rather
//! than between batches.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tgdkit::chase_crate::faults::{env_seed, FaultPlan, FaultSite};
use tgdkit::chase_crate::CancelToken;
use tgdkit::instance::{Elem, Fact};
use tgdkit::logic::{parse_tgds, Schema, TgdSet};
use tgdkit::store::{KbConfig, ReplicatedKb};

fn test_set() -> TgdSet {
    let mut schema = Schema::default();
    let tgds = parse_tgds(&mut schema, "E(x,y), E(y,z) -> E(x,z).").unwrap();
    TgdSet::new(schema, tgds).unwrap()
}

fn e_fact(set: &TgdSet, x: u32, y: u32) -> Fact {
    Fact::new(set.schema().pred_id("E").unwrap(), vec![Elem(x), Elem(y)])
}

fn tmpdir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tgdkit-repl-chaos-{tag}-{}-{n}",
        std::process::id()
    ))
}

fn repl_config() -> KbConfig {
    KbConfig {
        replicas: 3,
        quorum: 2,
        retry_backoff_ms: 0,
        compact_wal_bytes: u64::MAX,
        ..KbConfig::default()
    }
}

/// Sorted `(name, bytes)` listing of a replica directory.
fn dir_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

#[test]
fn kill_one_replica_mid_drive_quorum_continues_and_rejoin_repairs() {
    let set = test_set();
    let root = tmpdir("kill-mid-drive");
    let edge = set.schema().pred_id("E").unwrap();
    let batches = 16u32;
    // The seed matrix varies WHICH replica dies and WHEN.
    let victim = (env_seed() % 3) as usize;
    let kill_at = 3 + (env_seed() / 3) % 8;

    let (mut kb, _) = ReplicatedKb::open(&root, &set, repl_config()).unwrap();
    for i in 0..batches {
        if u64::from(i) == kill_at {
            kb.kill_replica(victim);
        }
        // Every batch must be acknowledged: 2 of 3 replicas are up.
        kb.apply(&[e_fact(&set, i, i + 1)], &[])
            .unwrap_or_else(|e| panic!("quorum write refused at batch {i}: {e}"));
    }
    assert_eq!(
        kb.seq(),
        u64::from(batches),
        "an acknowledged batch was lost"
    );
    assert!(
        kb.stats().quorum_waits >= 1,
        "the drive never ran degraded — the kill did not land"
    );

    // Re-admit the victim (repair may already have caught it up
    // opportunistically; `repair()` makes it unconditional) and check
    // byte-identity across all three replicas.
    kb.repair();
    assert_eq!(kb.healthy_count(), 3, "the killed replica failed to rejoin");
    assert!(kb.stats().repairs >= 1);
    assert_eq!(kb.stats().lag_bytes, 0, "repair left a backlog");
    let dirs = kb.replica_dirs();
    let reference = dir_files(&dirs[0]);
    for dir in &dirs[1..] {
        assert_eq!(
            dir_files(dir),
            reference,
            "replicas are not byte-identical after repair"
        );
    }
    drop(kb);

    // Restart: the acknowledged prefix survives whole.
    let (kb, report) = ReplicatedKb::open(&root, &set, repl_config()).unwrap();
    assert_eq!(kb.seq(), u64::from(batches));
    assert!(!report.failover, "no replica should have outrun replica-00");
    assert!(
        kb.holds(edge, &[Elem(0), Elem(batches)]),
        "recovered closure lost the chain endpoint"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn injected_kills_inside_appends_never_lose_acknowledged_batches() {
    let set = test_set();
    let root = tmpdir("injected-kill");
    let edge = set.schema().pred_id("E").unwrap();
    let batches = 24u32;
    let plan = FaultPlan::only(env_seed().wrapping_add(11), FaultSite::ReplicaKill, 9);
    let token = CancelToken::with_faults(plan);

    let (mut kb, _) = ReplicatedKb::open(&root, &set, repl_config()).unwrap();
    let mut acked = 0u32;
    for _ in 0..batches {
        // A kill can strike any replica mid-append; with enough strikes
        // in one batch, even quorum can be refused — refusals are typed
        // and the batch simply is not acknowledged. Chain edges extend
        // from the acknowledged endpoint, so a refused batch leaves the
        // chain (and the next attempt) unchanged.
        if kb
            .apply_governed(&[e_fact(&set, acked, acked + 1)], &[], &token)
            .is_ok()
        {
            acked += 1;
        }
    }
    assert!(
        acked > 0,
        "the period-9 schedule should let most batches through"
    );
    assert_eq!(kb.seq(), u64::from(acked));
    let live = kb.chased().clone();
    drop(kb);

    // Clean recovery serves exactly the acknowledged closure.
    let (kb, _) = ReplicatedKb::open(&root, &set, repl_config()).unwrap();
    assert_eq!(
        kb.seq(),
        u64::from(acked),
        "recovery lost acknowledged batches"
    );
    assert_eq!(kb.chased(), &live, "recovered closure diverged");
    if acked > 0 {
        assert!(kb.holds(edge, &[Elem(0), Elem(acked)]));
    }
    let _ = std::fs::remove_dir_all(&root);
}
