//! Replicated-store property tests: for ANY seeded schedule of torn
//! writes, fsync failures, transient replica append faults, replica
//! lags, and replica kills, a quorum-2-of-3 `ReplicatedKb`
//!
//! 1. never loses an acknowledged batch: every apply the caller saw
//!    succeed is present after a full close-and-recover cycle, and the
//!    recovered closure is identical to a *shadow* `DurableKb` that
//!    absorbed exactly the acknowledged batches with no faults at all;
//! 2. degrades below quorum to typed `QuorumLost` errors — read-only,
//!    never a panic, never a silently dropped batch;
//! 3. survives the total loss of any `quorum - 1` replica directories
//!    with a verified failover that serves the same closure.
//!
//! CI runs this file under the `TGDKIT_FAULTS_SEED` matrix, so the
//! schedules vary across matrix legs.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use tgdkit::chase_crate::faults::{env_seed, silence_injected_panics, FaultPlan};
use tgdkit::chase_crate::CancelToken;
use tgdkit::instance::{Elem, Fact};
use tgdkit::logic::{parse_tgds, Schema, TgdSet};
use tgdkit::store::{DurableKb, KbConfig, ReplicatedKb, StoreError};

fn test_set() -> TgdSet {
    let mut schema = Schema::default();
    let tgds = parse_tgds(
        &mut schema,
        "E(x,y), E(y,z) -> E(x,z). P(x) -> exists w : E(x,w).",
    )
    .unwrap();
    TgdSet::new(schema, tgds).unwrap()
}

/// A unique scratch directory per case (tests run concurrently).
fn tmpdir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "tgdkit-proptest-repl-{tag}-{}-{n}",
        std::process::id()
    ))
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Deterministic insert/retract batches over a six-constant domain (the
/// same generator shape as `proptest_durable`).
fn gen_batches(set: &TgdSet, seed: u64, n: usize) -> Vec<(Vec<Fact>, Vec<Fact>)> {
    let e = set.schema().pred_id("E").unwrap();
    let p = set.schema().pred_id("P").unwrap();
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
    let fact = |state: &mut u64| {
        if lcg(state).is_multiple_of(3) {
            Fact::new(p, vec![Elem((lcg(state) % 6) as u32)])
        } else {
            Fact::new(
                e,
                vec![Elem((lcg(state) % 6) as u32), Elem((lcg(state) % 6) as u32)],
            )
        }
    };
    (0..n)
        .map(|_| {
            let inserts = (0..1 + (lcg(&mut state) % 3) as usize)
                .map(|_| fact(&mut state))
                .collect();
            let retracts = (0..(lcg(&mut state) % 2) as usize)
                .map(|_| fact(&mut state))
                .collect();
            (inserts, retracts)
        })
        .collect()
}

/// 3 replicas at quorum 2, no auto-compaction (the properties compare
/// WAL timelines), no real backoff sleeps.
fn repl_config() -> KbConfig {
    KbConfig {
        replicas: 3,
        quorum: 2,
        retry_backoff_ms: 0,
        compact_wal_bytes: u64::MAX,
        ..KbConfig::default()
    }
}

fn shadow_config() -> KbConfig {
    KbConfig {
        compact_wal_bytes: u64::MAX,
        ..KbConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property 1 (the acknowledged prefix is sacred): under an arbitrary
    /// seeded schedule mixing every fault site — torn writes, fsync
    /// failures, replica append faults / lags / kills, plus the chase's
    /// own injected panics and budget trips — the replicated store's
    /// in-memory state always equals a fault-free shadow store that
    /// applied exactly the acknowledged batches, and so does the state a
    /// full close-and-recover reconstructs from the replica directories.
    #[test]
    fn seeded_fault_schedules_never_lose_acknowledged_batches(
        seed in 0u64..64,
        n_batches in 4usize..12,
    ) {
        silence_injected_panics();
        let set = test_set();
        let root = tmpdir("shadowed");
        let shadow_dir = tmpdir("shadow");
        let batches = gen_batches(&set, seed, n_batches);
        let plan_seed = env_seed().wrapping_mul(1000) + seed;
        let token = CancelToken::with_faults(FaultPlan::seeded(plan_seed));

        let (mut kb, _) = ReplicatedKb::open(&root, &set, repl_config()).unwrap();
        let (mut shadow, _) = DurableKb::open(&shadow_dir, &set, shadow_config()).unwrap();
        let mut acked = 0u64;
        for (inserts, retracts) in &batches {
            // A failed apply is NOT acknowledged; whatever the fault was,
            // it must not have moved the in-memory state.
            if let Ok(report) = kb.apply_governed(inserts, retracts, &token) {
                prop_assert_eq!(report.seq, acked, "acks must be gapless");
                acked += 1;
                // The shadow absorbs the same batch fault-free.
                shadow.apply(inserts, retracts).unwrap();
            }
            prop_assert_eq!(kb.seq(), acked);
            prop_assert_eq!(kb.chased(), shadow.chased(),
                "live closure diverged from the shadow after {} acks", acked);
        }
        prop_assert_eq!(kb.base(), shadow.base());
        drop(kb);

        // Crash-and-recover: a clean reopen of the replica root must
        // reconstruct exactly the acknowledged prefix.
        let (kb, _) = ReplicatedKb::open(&root, &set, repl_config()).unwrap();
        prop_assert_eq!(kb.seq(), acked, "recovery lost or invented acks");
        prop_assert_eq!(kb.chased(), shadow.chased(),
            "recovered closure diverged from the shadow");
        prop_assert_eq!(kb.base(), shadow.base());
        let _ = std::fs::remove_dir_all(&root);
        let _ = std::fs::remove_dir_all(&shadow_dir);
    }

    /// Property 2 (typed degradation): with every replica dead and every
    /// disk pinned unusable, applies fail with `QuorumLost` — typed,
    /// read-only, no panic — and the in-memory closure keeps serving the
    /// acknowledged state unchanged.
    #[test]
    fn below_quorum_is_typed_read_only_never_silent_loss(
        seed in 0u64..64,
        n_batches in 1usize..6,
    ) {
        let set = test_set();
        let root = tmpdir("quorum");
        let batches = gen_batches(&set, seed, n_batches);
        let (mut kb, _) = ReplicatedKb::open(&root, &set, repl_config()).unwrap();
        for (inserts, retracts) in &batches {
            kb.apply(inserts, retracts).unwrap();
        }
        let acked_seq = kb.seq();
        let acked_chased = kb.chased().clone();
        // Kill all three replicas and replace each directory with a plain
        // file, so neither catch-up repair nor reseed can resurrect them.
        let dirs = kb.replica_dirs();
        for (i, dir) in dirs.iter().enumerate() {
            kb.kill_replica(i);
            std::fs::remove_dir_all(dir).unwrap();
            std::fs::write(dir, b"dead disk").unwrap();
        }
        for (inserts, retracts) in gen_batches(&set, seed ^ 0xDEAD, 5).iter() {
            let err = kb.apply(inserts, retracts).unwrap_err();
            prop_assert!(
                matches!(err, StoreError::QuorumLost { .. }),
                "expected QuorumLost, got {}", err
            );
            prop_assert_eq!(kb.seq(), acked_seq, "a refused batch moved seq");
        }
        prop_assert!(kb.read_only());
        prop_assert_eq!(kb.chased(), &acked_chased, "reads must keep serving");
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Property 3 (verified failover): after losing any ONE replica
    /// directory outright (= quorum - 1 of them), reopening elects a
    /// survivor with the full acknowledged prefix, serves the identical
    /// closure, and re-ships the lost replica to byte-identity.
    #[test]
    fn losing_any_quorum_minus_one_replicas_fails_over_losslessly(
        seed in 0u64..64,
        n_batches in 1usize..8,
        lost in 0usize..3,
    ) {
        let set = test_set();
        let root = tmpdir("failover");
        let batches = gen_batches(&set, seed, n_batches);
        let (mut kb, _) = ReplicatedKb::open(&root, &set, repl_config()).unwrap();
        for (inserts, retracts) in &batches {
            kb.apply(inserts, retracts).unwrap();
        }
        let acked_seq = kb.seq();
        let acked_chased = kb.chased().clone();
        let dirs = kb.replica_dirs();
        drop(kb);
        std::fs::remove_dir_all(&dirs[lost]).unwrap();

        let (kb, report) = ReplicatedKb::open(&root, &set, repl_config()).unwrap();
        prop_assert_eq!(report.failover, lost == 0,
            "a failover is exactly an election away from replica-00");
        prop_assert_ne!(report.elected, lost);
        prop_assert_eq!(report.repaired, 1, "the lost replica is re-shipped");
        prop_assert_eq!(kb.seq(), acked_seq, "failover lost acknowledged batches");
        prop_assert_eq!(kb.chased(), &acked_chased, "failover closure diverged");
        prop_assert_eq!(kb.healthy_count(), 3);

        // Byte-identity of the re-shipped replica with the elected one.
        let read_dir = |d: &PathBuf| {
            let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(d)
                .unwrap()
                .map(|e| {
                    let e = e.unwrap();
                    (
                        e.file_name().to_string_lossy().into_owned(),
                        std::fs::read(e.path()).unwrap(),
                    )
                })
                .collect();
            files.sort();
            files
        };
        prop_assert_eq!(read_dir(&dirs[lost]), read_dir(&dirs[report.elected]));
        let _ = std::fs::remove_dir_all(&root);
    }
}
