//! Fault-injection property tests for the cancellation / panic-isolation
//! layer: under any injected fault schedule (worker panics, spurious budget
//! trips, deadline expiries), the pipeline may only *degrade* answers
//! toward `Unknown`/`Cancelled` — never invert a verdict — and a cancelled
//! chase always stops on a round-boundary prefix of the uncancelled run.
//!
//! CI runs this file under a seed matrix via `TGDKIT_FAULTS_SEED`
//! (`tgdkit::chase_crate::faults::env_seed`), so one green run covers one
//! schedule and the matrix covers several.

use proptest::prelude::*;
use tgdkit::chase_crate::faults::{env_seed, silence_injected_panics, FaultPlan, FaultSite};
use tgdkit::chase_crate::{
    chase, chase_governed, entails_auto, entails_auto_governed, CancelToken, ChaseBudget,
    ChaseOutcome, ChaseVariant, Entailment, TriggerSearch,
};
use tgdkit::core::rewrite::{guarded_to_linear_governed, guarded_to_linear_with_stats};
use tgdkit::core::workload::{generate_set, Family, WorkloadParams};
use tgdkit::core::RewriteOutcome;
use tgdkit::instance::Instance;
use tgdkit::logic::{Tgd, TgdSet};

fn random_set(seed: u64, rules: usize, existentials: usize) -> TgdSet {
    let params = WorkloadParams {
        predicates: 3,
        max_arity: 2,
        rules,
        body_atoms: 2,
        head_atoms: 1,
        universals: 2,
        existentials,
    };
    generate_set(&params, Family::Guarded, seed)
}

fn random_candidates(seed: u64, count: usize) -> Vec<Tgd> {
    let params = WorkloadParams {
        predicates: 3,
        max_arity: 2,
        rules: count,
        body_atoms: 1,
        head_atoms: 1,
        universals: 2,
        existentials: 0,
    };
    generate_set(&params, Family::Unrestricted, seed)
        .tgds()
        .to_vec()
}

/// A small start instance over the set's schema: one fact per predicate on
/// a two-element domain, enough to trigger most rules.
fn seed_instance(set: &TgdSet) -> Instance {
    let schema = set.schema();
    let mut inst = Instance::new(schema.clone());
    for pred in schema.preds() {
        let arity = schema.arity(pred);
        inst.add_fact(
            pred,
            (0..arity)
                .map(|i| tgdkit::instance::Elem((i % 2) as u32))
                .collect(),
        );
    }
    inst
}

/// Faulted verdicts must equal the fault-free verdict or be `Unknown` —
/// injected faults only truncate work, so they can never manufacture a
/// `Proved`/`Disproved` the clean run did not reach, nor flip one.
fn assert_not_inverted(clean: Entailment, faulted: Entailment) {
    assert!(
        faulted == clean || faulted == Entailment::Unknown,
        "injected faults inverted a verdict: clean {clean:?}, faulted {faulted:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A chase cancelled by injected deadline expiries stops exactly on one
    /// of the uncancelled run's round prefixes (reconstructed via
    /// `max_rounds = j` reruns).
    #[test]
    fn cancelled_chase_lands_on_a_round_prefix(
        set_seed in 0u64..200,
        rules in 1usize..4,
        schedule in 0u64..6,
    ) {
        let set = random_set(set_seed, rules, 1);
        let start = seed_instance(&set);
        let budget = ChaseBudget {
            max_facts: 2_000,
            max_rounds: 12,
            max_bytes: usize::MAX,
        };
        let full = chase(&start, set.tgds(), ChaseVariant::Restricted, budget);
        let prefixes: Vec<Instance> = (0..=full.stats.rounds)
            .map(|j| {
                chase(
                    &start,
                    set.tgds(),
                    ChaseVariant::Restricted,
                    ChaseBudget {
                        max_facts: budget.max_facts,
                        max_rounds: j,
                        max_bytes: usize::MAX,
                    },
                )
                .instance
            })
            .collect();
        let seed = env_seed().wrapping_mul(1000) + schedule;
        let token =
            CancelToken::with_faults(FaultPlan::only(seed, FaultSite::DeadlineExpire, 3));
        let result = chase_governed(
            &start,
            set.tgds(),
            ChaseVariant::Restricted,
            budget,
            TriggerSearch::Auto,
            &token,
        );
        if result.outcome == ChaseOutcome::Cancelled {
            prop_assert!(result.stats.rounds < prefixes.len());
            prop_assert_eq!(
                &result.instance,
                &prefixes[result.stats.rounds],
                "cancelled instance is not the round-{} prefix",
                result.stats.rounds
            );
        }
    }

    /// Entailment under a mixed fault schedule (panics + budget trips +
    /// expiries) never inverts the fault-free verdict.
    #[test]
    fn entailment_verdicts_survive_mixed_faults(
        sigma_seed in 0u64..200,
        cand_seed in 200u64..400,
        rules in 1usize..4,
        existentials in 0usize..2,
        schedule in 0u64..3,
    ) {
        silence_injected_panics();
        let set = random_set(sigma_seed, rules, existentials);
        let candidates = random_candidates(cand_seed, 4);
        let budget = ChaseBudget::default();
        let seed = env_seed().wrapping_mul(1000) + schedule;
        for candidate in &candidates {
            let clean = entails_auto(set.schema(), set.tgds(), candidate, budget);
            let token = CancelToken::with_faults(FaultPlan::seeded(seed));
            let faulted =
                entails_auto_governed(set.schema(), set.tgds(), candidate, budget, &token);
            assert_not_inverted(clean, faulted);
        }
    }

    /// The rewriting procedure under injected faults never contradicts the
    /// fault-free outcome: a rewritable set is never reported
    /// `NotRewritable`, a definitively non-rewritable set never yields a
    /// rewriting.
    #[test]
    fn rewrite_outcome_survives_mixed_faults(
        set_seed in 0u64..120,
        rules in 1usize..3,
        schedule in 0u64..3,
    ) {
        silence_injected_panics();
        let set = random_set(set_seed, rules, 0);
        let opts = tgdkit::core::RewriteOptions::default();
        let (clean, _) = guarded_to_linear_with_stats(&set, &opts);
        let seed = env_seed().wrapping_mul(1000) + schedule;
        let token = CancelToken::with_faults(FaultPlan::seeded(seed));
        let (faulted, stats) = guarded_to_linear_governed(&set, &opts, &token);
        match (&clean, &faulted) {
            (RewriteOutcome::Rewritten(_), RewriteOutcome::NotRewritable) => {
                panic!("faults flipped Rewritten to NotRewritable");
            }
            (RewriteOutcome::NotRewritable, RewriteOutcome::Rewritten(r)) => {
                panic!("faults fabricated a rewriting for a non-rewritable set: {r:?}");
            }
            _ => {}
        }
        if faulted == RewriteOutcome::Cancelled {
            prop_assert!(stats.cancelled, "Cancelled outcome without stats.cancelled");
        }
    }
}

/// Non-property smoke checks for the harness itself.
#[test]
fn injected_group_eval_panics_are_contained() {
    silence_injected_panics();
    let set = random_set(7, 2, 0);
    let opts = tgdkit::core::RewriteOptions::default();
    let token = CancelToken::with_faults(FaultPlan::only(1, FaultSite::GroupEvalPanic, 2));
    // Must return (not unwind), and every poisoned group reports Unknown.
    let (outcome, stats) = guarded_to_linear_governed(&set, &opts, &token);
    if stats.panics_contained > 0 {
        assert_ne!(
            outcome,
            RewriteOutcome::NotRewritable,
            "a run with contained panics has Unknown verdicts and cannot be definitive"
        );
    }
}

#[test]
fn injected_trigger_worker_panics_cancel_the_chase() {
    silence_injected_panics();
    let set = random_set(11, 2, 1);
    let start = seed_instance(&set);
    let token = CancelToken::with_faults(FaultPlan::always(FaultSite::TriggerWorkerPanic));
    let result = chase_governed(
        &start,
        set.tgds(),
        ChaseVariant::Restricted,
        ChaseBudget::default(),
        TriggerSearch::Auto,
        &token,
    );
    assert_eq!(result.outcome, ChaseOutcome::Cancelled);
    assert!(result.stats.panics_contained > 0);
    // No partial round was applied: the instance is the untouched start.
    assert_eq!(result.instance.fact_count(), start.fact_count());
}
