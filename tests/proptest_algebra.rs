//! Property-based tests of the instance algebra (paper §2, §3.1–3.2, §5).

use proptest::prelude::*;
use tgdkit::core::workload::{generate_set, Family, WorkloadParams};
use tgdkit::prelude::*;

fn schema() -> Schema {
    Schema::builder().pred("R", 2).pred("T", 1).build()
}

fn instance(seed: u64, size: usize, density: f64) -> Instance {
    InstanceGen::new(schema(), seed).generate(size, density)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `I ⊗ J ≃ J ⊗ I`.
    #[test]
    fn product_is_commutative_up_to_iso(a in 0u64..500, b in 0u64..500, size in 1usize..4) {
        let i = instance(a, size, 0.4);
        let j = instance(b, size, 0.4);
        let (ij, _) = direct_product(&i, &j);
        let (ji, _) = direct_product(&j, &i);
        prop_assert!(are_isomorphic(&ij, &ji));
    }

    /// `(I ⊗ J) ⊗ K ≃ I ⊗ (J ⊗ K)`.
    #[test]
    fn product_is_associative_up_to_iso(a in 0u64..200, b in 0u64..200, c in 0u64..200) {
        let i = instance(a, 2, 0.5);
        let j = instance(b, 2, 0.5);
        let k = instance(c, 2, 0.5);
        let left = direct_product(&direct_product(&i, &j).0, &k).0;
        let right = direct_product(&i, &direct_product(&j, &k).0).0;
        prop_assert!(are_isomorphic(&left, &right));
    }

    /// Product facts are exactly the pairs of component facts.
    #[test]
    fn product_fact_count_is_the_product(a in 0u64..500, b in 0u64..500, size in 1usize..4) {
        let s = schema();
        let i = instance(a, size, 0.4);
        let j = instance(b, size, 0.4);
        let (prod, _) = direct_product(&i, &j);
        for pred in s.preds() {
            prop_assert_eq!(
                prod.relation(pred).len(),
                i.relation(pred).len() * j.relation(pred).len()
            );
        }
    }

    /// Intersection is idempotent, commutative, and below both arguments.
    #[test]
    fn intersection_laws(a in 0u64..500, b in 0u64..500, size in 0usize..5) {
        let i = instance(a, size, 0.4);
        let j = instance(b, size, 0.4);
        prop_assert_eq!(intersection(&i, &i), i.clone());
        prop_assert_eq!(intersection(&i, &j), intersection(&j, &i));
        let meet = intersection(&i, &j);
        prop_assert!(meet.is_contained_in(&i) && meet.is_contained_in(&j));
    }

    /// Union is idempotent, commutative, and above both arguments.
    #[test]
    fn union_laws(a in 0u64..500, b in 0u64..500, size in 0usize..5) {
        let i = instance(a, size, 0.4);
        let j = instance(b, size, 0.4);
        prop_assert_eq!(union(&i, &i), i.clone());
        prop_assert_eq!(union(&i, &j), union(&j, &i));
        let join = union(&i, &j);
        prop_assert!(i.is_contained_in(&join) && j.is_contained_in(&join));
    }

    /// Restriction to the active domain preserves all facts and yields a
    /// subinstance.
    #[test]
    fn restriction_to_adom_is_a_subinstance(a in 0u64..500, size in 0usize..5) {
        let i = instance(a, size, 0.4);
        let r = i.restrict(i.active_domain());
        prop_assert_eq!(r.fact_count(), i.fact_count());
        prop_assert!(r.is_subinstance_of(&i));
    }

    /// Lemma 3.2 as a property: critical instances satisfy random tgd sets.
    #[test]
    fn critical_instances_satisfy_random_tgds(seed in 0u64..300, k in 1usize..4) {
        let set = generate_set(
            &WorkloadParams { existentials: (seed % 2) as usize, ..Default::default() },
            Family::Unrestricted,
            seed,
        );
        let crit = critical_instance(set.schema(), k, 0);
        prop_assert!(satisfies_tgds(&crit, set.tgds()));
        prop_assert!(is_critical(&crit));
    }

    /// The defining property of non-oblivious duplicating extensions
    /// (Def. 5.3): R(t̄) ∈ J iff h(R(t̄)) ∈ I with h(d) = c.
    #[test]
    fn non_oblivious_duplication_definition(a in 0u64..500, size in 1usize..4) {
        let s = schema();
        let i = instance(a, size, 0.4);
        let c = *i.dom().iter().next().unwrap();
        let d = i.fresh_elem();
        let j = non_oblivious_duplicating_extension(&i, c, d);
        let h = |e: Elem| if e == d { c } else { e };
        // Forward: every J-fact collapses into I.
        for fact in j.facts() {
            let collapsed: Vec<Elem> = fact.args.iter().map(|&e| h(e)).collect();
            prop_assert!(i.contains_fact(fact.pred, &collapsed));
        }
        // Backward over the (small) tuple space.
        let dom: Vec<Elem> = j.dom().iter().copied().collect();
        for pred in s.preds() {
            let arity = s.arity(pred);
            if arity == 1 {
                for &x in &dom {
                    prop_assert_eq!(
                        j.contains_fact(pred, &[x]),
                        i.contains_fact(pred, &[h(x)])
                    );
                }
            } else {
                for &x in &dom {
                    for &y in &dom {
                        prop_assert_eq!(
                            j.contains_fact(pred, &[x, y]),
                            i.contains_fact(pred, &[h(x), h(y)])
                        );
                    }
                }
            }
        }
    }

    /// Oblivious extensions are contained in non-oblivious ones.
    #[test]
    fn oblivious_is_contained_in_non_oblivious(a in 0u64..500, size in 1usize..4) {
        let i = instance(a, size, 0.5);
        let c = *i.dom().iter().next().unwrap();
        let d = i.fresh_elem();
        let oblivious = oblivious_duplicating_extension(&i, c, d);
        let non_oblivious = non_oblivious_duplicating_extension(&i, c, d);
        prop_assert!(oblivious.is_contained_in(&non_oblivious));
    }

    /// Isomorphism is invariant under element renaming.
    #[test]
    fn renaming_preserves_isomorphism(a in 0u64..500, size in 0usize..5, shift in 1u32..50) {
        let i = instance(a, size, 0.4);
        let renamed = i.map_elements(|e| Elem(e.0 + shift));
        prop_assert!(are_isomorphic(&i, &renamed));
    }

    /// Cores are hom-equivalent retracts: the core embeds into the instance
    /// and vice versa.
    #[test]
    fn core_is_hom_equivalent(a in 0u64..300, size in 0usize..4) {
        let i = instance(a, size, 0.4);
        let core = core_of(&i);
        prop_assert!(core.fact_count() <= i.fact_count());
        prop_assert!(
            find_instance_hom(&core, &i, &Default::default()).is_some()
        );
        prop_assert!(
            find_instance_hom(&i, &core, &Default::default()).is_some()
        );
    }
}
