//! End-to-end regression tests for the crash-on-poisoned-cache fix: a
//! worker panic contained while the shared entailment cache's lock is held
//! used to abort every later query via `.expect("entail cache poisoned")`.
//! Now the cache recovers (counting the recovery), keeps coherent state,
//! and keeps serving — including through the entailment service's jobs.
//!
//! Runs under the `tgdkit-faults` feature (a root dev-dependency), which
//! exposes the deterministic fault plans and the poison helper.

use tgdkit::chase_crate::faults::{silence_injected_panics, FaultPlan, FaultSite};
use tgdkit::chase_crate::{
    entails_batch, entails_batch_governed, CancelToken, ChaseBudget, EntailCache, Entailment,
};
use tgdkit::logic::{parse_tgds, Schema};
use tgdkit::serve::{Job, JobOutput, JobStep, Request, SliceLimit};

fn workload(schema: &mut Schema) -> (Vec<tgdkit::logic::Tgd>, Vec<tgdkit::logic::Tgd>) {
    let sigma = parse_tgds(schema, "R(x,y) -> S(y). S(x), R(x,y) -> T(y).").unwrap();
    let candidates = parse_tgds(
        schema,
        "R(x,y) -> S(y). R(x,y) -> T(x). S(x) -> T(x). R(x,y), S(y) -> S(y).",
    )
    .unwrap();
    (sigma, candidates)
}

/// The original crash: poison the cache lock the way a contained worker
/// panic does, then keep querying. Pre-fix this aborted the process; now
/// the memoized verdicts are still served and the recovery is counted.
#[test]
fn poisoned_cache_keeps_serving_batch_queries() {
    let mut schema = Schema::default();
    let (sigma, candidates) = workload(&mut schema);
    let cache = EntailCache::new();
    let budget = ChaseBudget::default();

    let (before, _) = entails_batch(&schema, &sigma, &candidates, budget, Some(&cache));
    assert!(before.contains(&Entailment::Proved));

    cache.poison_for_tests();

    // Every one of these lock acquisitions crashed pre-fix.
    let (after, stats) = entails_batch(&schema, &sigma, &candidates, budget, Some(&cache));
    assert_eq!(before, after, "poison changed cached verdicts");
    assert!(stats.cache_hits > 0, "the memo survived the poison");
    assert!(cache.poison_recoveries() >= 1);
    assert_eq!(cache.poison_clears(), 0, "coherent state was kept");
}

/// A contained in-engine panic (the deterministic `GroupEvalPanic` fault)
/// leaves the shared cache usable: the faulted run degrades its own
/// group's verdicts to `Unknown` at worst, and a clean rerun against the
/// same cache produces the clean verdicts.
#[test]
fn contained_group_panic_leaves_cache_usable() {
    silence_injected_panics();
    let mut schema = Schema::default();
    let (sigma, candidates) = workload(&mut schema);
    let cache = EntailCache::new();
    let budget = ChaseBudget::default();

    let clean_reference = entails_batch(&schema, &sigma, &candidates, budget, None).0;

    // Panic inside every group evaluation: all verdicts degrade to
    // Unknown, but nothing aborts and nothing poisons permanently.
    let token = CancelToken::with_faults(FaultPlan::only(7, FaultSite::GroupEvalPanic, 1));
    let (faulted, stats) =
        entails_batch_governed(&schema, &sigma, &candidates, budget, Some(&cache), &token);
    assert!(stats.chase.panics_contained >= 1 || faulted == clean_reference);

    let (rerun, _) = entails_batch(&schema, &sigma, &candidates, budget, Some(&cache));
    assert_eq!(
        rerun, clean_reference,
        "panic residue perturbed a clean rerun"
    );
}

/// The service path: a scheduler job sliced against an already-poisoned
/// tenant cache completes with the same verdicts as a dedicated run
/// against a healthy cache.
#[test]
fn serve_jobs_survive_a_poisoned_tenant_cache() {
    let request = Request::Batch {
        tenant: "t".into(),
        budget: ChaseBudget::default(),
        program: "R(x0, x1) -> S(x1). S(x0) -> T(x0).".into(),
        candidates: "R(x0, x1) -> T(x1). T(x0) -> S(x0). S(x0) -> T(x0).".into(),
    };
    let reference = {
        let mut job = Job::build(&request).unwrap();
        match job.run_to_completion(&EntailCache::new()) {
            JobStep::Done(JobOutput::Verdicts(v)) => v,
            other => panic!("dedicated run failed: {other:?}"),
        }
    };

    let poisoned = EntailCache::new();
    poisoned.poison_for_tests();
    let mut job = Job::build(&request).unwrap();
    let verdicts = loop {
        match job.run_slice(&poisoned, SliceLimit::Checks(1)) {
            JobStep::Suspended => continue,
            JobStep::Done(JobOutput::Verdicts(v)) => break v,
            other => panic!("sliced run failed: {other:?}"),
        }
    };
    assert_eq!(verdicts, reference);
    assert!(
        poisoned.poison_recoveries() >= 1,
        "the job really hit the poisoned lock"
    );
}
