//! Property-based tests for the core-layer machinery: candidate
//! enumeration, the diagram/separating-edd extraction, and the synthesis
//! pipeline.

use proptest::prelude::*;
use tgdkit::core::characterize::recover_tgds;
use tgdkit::core::diagram::{separating_edd, DiagramOptions};
use tgdkit::core::enumerate::{
    guarded_candidates, linear_candidates, paper_bound_guarded, paper_bound_linear, EnumOptions,
};
use tgdkit::core::workload::{generate_set, schema_for, Family, WorkloadParams};
use tgdkit::prelude::*;
use tgdkit_chase::{entails_edd_under_tgds, satisfies_edd};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Enumerated candidates are canonical, in-class, in-profile, and below
    /// the paper bounds.
    #[test]
    fn enumeration_invariants(preds in 1usize..4, arity in 1usize..3, n in 1usize..3, m in 0usize..2) {
        let schema = schema_for(&WorkloadParams {
            predicates: preds,
            max_arity: arity,
            ..Default::default()
        });
        let opts = EnumOptions::default();
        let lin = linear_candidates(&schema, n, m, &opts);
        for tgd in &lin.tgds {
            prop_assert!(tgd.is_linear());
            prop_assert!(tgd.universal_count() <= n);
            prop_assert!(tgd.existential_count() <= m);
            prop_assert!(tgd.validate(&schema).is_ok());
        }
        prop_assert!((lin.tgds.len() as f64) <= paper_bound_linear(&schema, n, m));
        let gua = guarded_candidates(&schema, n, m, &opts);
        for tgd in &gua.tgds {
            prop_assert!(tgd.is_guarded());
        }
        prop_assert!((gua.tgds.len() as f64) <= paper_bound_guarded(&schema, n, m));
        // Every linear candidate is guarded, so the guarded space dominates
        // (after canonical dedup both are duplicate-free).
        prop_assert!(gua.tgds.len() >= lin.tgds.len());
    }

    /// A separating edd, when found, is violated by the non-member and
    /// satisfied by chased members (Claims 4.5/4.6 sampled end to end).
    #[test]
    fn separating_edds_separate(rule_seed in 0u64..100, data_seed in 0u64..100) {
        let sigma = generate_set(
            &WorkloadParams { rules: 2, ..Default::default() },
            Family::Full,
            rule_seed,
        );
        let (n, m) = sigma.profile();
        let i = InstanceGen::new(sigma.schema().clone(), data_seed).generate(3, 0.4);
        prop_assume!(!satisfies_tgds(&i, sigma.tgds()));
        if let Some(edd) = separating_edd(&sigma, &i, n, m, &DiagramOptions::default()) {
            prop_assert!(!satisfies_edd(&i, &edd), "I must violate δ");
            // Exact member check through edd entailment (chase universality).
            prop_assert_eq!(
                entails_edd_under_tgds(sigma.schema(), sigma.tgds(), &edd, ChaseBudget::default()),
                Entailment::Proved,
                "δ must hold in every member"
            );
        }
    }

    /// Synthesis recovers an equivalent set for random full hidden sets.
    #[test]
    fn synthesis_roundtrip_on_full_sets(seed in 0u64..60) {
        let hidden = generate_set(
            &WorkloadParams {
                predicates: 2,
                max_arity: 2,
                rules: 2,
                body_atoms: 2,
                head_atoms: 1,
                universals: 2,
                existentials: 0,
            },
            Family::Full,
            seed,
        );
        prop_assume!(!hidden.is_empty());
        let recovery = recover_tgds(
            &hidden,
            &EnumOptions {
                max_body_atoms: 2,
                max_head_atoms: 1,
                max_candidates: 200_000,
            },
            ChaseBudget::default(),
        );
        prop_assert_eq!(
            recovery.equivalent,
            Entailment::Proved,
            "synthesis failed for {:?}",
            hidden.tgds()
        );
    }
}
