//! Breadth tests for API surfaces and edge paths not exercised by the
//! paper-focused suites: error rendering, parser diagnostics, the greedy
//! canonicalization fallback, display adapters, and budget edge cases.

use tgdkit::logic::canon::EXACT_LIMIT;
use tgdkit::logic::{
    canonical_tgd, parse_dependencies, same_up_to_renaming, tgd_variant_key, Dependency, LogicError,
};
use tgdkit::prelude::*;

#[test]
fn logic_errors_render_helpfully() {
    let mut s = Schema::default();
    s.add_pred("R", 2).unwrap();
    let err = s.add_pred("R", 3).unwrap_err();
    let rendered = err.to_string();
    assert!(rendered.contains('R') && rendered.contains('2') && rendered.contains('3'));

    let arity = LogicError::ArityMismatch {
        pred: "R".into(),
        expected: 2,
        actual: 1,
    };
    assert!(arity.to_string().contains("arity 2"));
    assert!(LogicError::EmptyHead.to_string().contains("non-empty"));
}

#[test]
fn parse_errors_carry_positions() {
    let mut s = Schema::default();
    // Error on line 3.
    let err =
        tgdkit::logic::parse_tgds(&mut s, "R(x,y) -> R(y,x).\n// fine\nR(x -> T(x).").unwrap_err();
    assert_eq!(err.line, 3);
    assert!(err.to_string().contains("3:"));
    // Column information for a mid-line error.
    let err2 = tgdkit::logic::parse_tgds(&mut s, "R(x,y) => T(x).").unwrap_err();
    assert_eq!(err2.line, 1);
    assert!(err2.column > 1);
}

#[test]
fn dependency_display_covers_all_kinds() {
    let mut s = Schema::default();
    let deps = parse_dependencies(
        &mut s,
        "R(x,y) -> T(x). R(x,y) -> x = y. R(x,y) -> x = y | T(x).",
    )
    .unwrap();
    let rendered: Vec<String> = deps.iter().map(|d| d.display(&s).to_string()).collect();
    assert_eq!(rendered[0], "R(x0, x1) -> T(x0)");
    assert_eq!(rendered[1], "R(x0, x1) -> x0 = x1");
    assert_eq!(rendered[2], "R(x0, x1) -> x0 = x1 | T(x0)");
    assert!(matches!(deps[2], Dependency::Edd(_)));
    for d in &deps {
        assert!(d.validate(&s).is_ok());
    }
}

#[test]
fn canonicalization_greedy_fallback_beyond_exact_limit() {
    // Bodies larger than EXACT_LIMIT take the deterministic greedy path;
    // it must stay idempotent and identify simple rotations.
    let mut s = Schema::default();
    let n = EXACT_LIMIT + 2;
    let mut body_a = String::new();
    for i in 0..n {
        body_a.push_str(&format!("E(v{}, v{}), ", i, (i + 1) % n));
    }
    let text_a = format!("{}P(v0) -> T(v0)", body_a);
    let tgd_a = parse_tgd(&mut s, &text_a).unwrap();
    assert!(tgd_a.body().len() > EXACT_LIMIT);
    let canon = canonical_tgd(&tgd_a);
    assert_eq!(
        canon,
        canonical_tgd(&canon),
        "greedy canonical not idempotent"
    );
    assert_eq!(tgd_variant_key(&tgd_a), tgd_variant_key(&canon));
    assert!(same_up_to_renaming(&tgd_a, &canon));
}

#[test]
fn instance_name_bookkeeping_through_operations() {
    let mut s = Schema::default();
    let i = parse_instance(&mut s, "R(alice, bob), T(alice)").unwrap();
    let alice = i.elem_by_name("alice").unwrap();
    // Restriction keeps names of surviving elements.
    let r = i.restrict(&[alice].into_iter().collect());
    assert_eq!(r.name_of(alice), Some("alice"));
    assert_eq!(r.elem_by_name("bob"), None);
    // restrict_to_facts keeps exactly the fact-touched elements.
    let t_fact: Vec<_> = i.facts().filter(|f| s.name(f.pred) == "T").collect();
    let rt = i.restrict_to_facts(&t_fact);
    assert_eq!(rt.fact_count(), 1);
    assert!(rt.dom().contains(&alice));
}

#[test]
fn cq_validation_and_query_surface() {
    let mut s = Schema::default();
    let probe = parse_tgd(&mut s, "E(x,y) -> Ans(x)").unwrap();
    let q = Cq::new(probe.body().to_vec(), vec![Var(0)]).unwrap();
    assert!(q.validate(&s).is_ok());
    assert_eq!(q.answer_vars(), &[Var(0)]);
    assert_eq!(q.atoms().len(), 1);
    // Validation against a schema missing the predicate fails.
    let empty = Schema::default();
    assert!(q.validate(&empty).is_err());
}

#[test]
fn position_graph_surface() {
    use tgdkit::chase_crate::PositionGraph;
    let mut s = Schema::default();
    let tgds = parse_tgds(&mut s, "E(x,y) -> exists z : F(y,z).").unwrap();
    let graph = PositionGraph::new(&s, &tgds);
    assert_eq!(graph.node_count(), 4); // E/2 + F/2 positions
    assert!(graph.is_weakly_acyclic());
}

#[test]
fn egd_chase_budget_and_failure_paths() {
    use tgdkit::chase_crate::chase::{chase_with_egds, ChaseVariant};
    let mut s = Schema::default();
    let deps = parse_dependencies(&mut s, "E(x,y), E(x,z) -> y = z.").unwrap();
    let egd = deps[0].as_egd().unwrap().clone();
    // Merging chains: E(a,b), E(a,c), E(a,d) all merge into one successor.
    let start = parse_instance(&mut s, "E(a,b), E(a,c), E(a,d)").unwrap();
    let err = chase_with_egds(
        &start,
        &[],
        std::slice::from_ref(&egd),
        ChaseVariant::Restricted,
        ChaseBudget::default(),
    );
    // All elements are original: hard failure.
    assert!(err.is_err());
    let failure = err.unwrap_err();
    assert!(failure.to_string().contains("cannot equate"));
}

#[test]
fn verdict_and_entailment_utilities() {
    assert!(Entailment::Proved.is_proved());
    assert!(Entailment::Disproved.is_disproved());
    assert_eq!(
        Entailment::Proved.and(Entailment::Unknown),
        Entailment::Unknown
    );
    assert_eq!(Verdict::from(Entailment::Unknown), Verdict::Unknown);
}

#[test]
fn chase_budget_presets_are_ordered() {
    let small = ChaseBudget::small();
    let default = ChaseBudget::default();
    let large = ChaseBudget::large();
    assert!(small.max_facts < default.max_facts && default.max_facts < large.max_facts);
    assert!(small.max_rounds <= default.max_rounds && default.max_rounds <= large.max_rounds);
}

#[test]
fn tgd_class_most_specific_labels() {
    let mut s = Schema::default();
    let cases = [
        ("U(x) -> T(x)", "linear"),
        ("R(x,y), T(x) -> T(y)", "guarded"),
        ("R(x,y), T(y) -> exists z : R(x,z)", "guarded"),
        ("R(x,y), R(y,z) -> T(y)", "frontier-guarded"),
        ("R(x,y), R(y,z) -> R(x,z)", "tgd"),
    ];
    for (text, expected) in cases {
        let tgd = parse_tgd(&mut s, text).unwrap();
        assert_eq!(tgd.class().most_specific(), expected, "for {text}");
    }
}

#[test]
fn subset_enumeration_edges() {
    use std::ops::ControlFlow;
    use tgdkit::core::neighbourhood::{for_each_subset_exact, for_each_subset_up_to};
    // k = 0: only the empty subset.
    let mut count = 0;
    let _ = for_each_subset_up_to(&[Elem(0), Elem(1)], 0, &mut |s| {
        assert!(s.is_empty());
        count += 1;
        ControlFlow::Continue(())
    });
    assert_eq!(count, 1);
    let mut exact0 = 0;
    let _ = for_each_subset_exact(&[Elem(0), Elem(1)], 0, &mut |s| {
        assert!(s.is_empty());
        exact0 += 1;
        ControlFlow::Continue(())
    });
    assert_eq!(exact0, 1);
    // Early break propagates.
    let mut seen = 0;
    let flow = for_each_subset_up_to(&[Elem(0), Elem(1), Elem(2)], 2, &mut |_| {
        seen += 1;
        if seen == 3 {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    assert_eq!(flow, ControlFlow::Break(()));
    assert_eq!(seen, 3);
}

#[test]
fn schema_display_and_extension_round() {
    let s = Schema::builder().pred("Aux", 0).pred("R", 3).build();
    assert_eq!(s.to_string(), "{Aux/0, R/3}");
    let ext = s.extended_with(&[("T", 1)]).unwrap();
    assert_eq!(ext.len(), 3);
    assert_eq!(ext.max_arity(), 3);
}
