#!/usr/bin/env python3
"""Regenerates EXPERIMENTS.md from the experiments binary output.

Usage: cargo run -p tgdkit-bench --bin experiments --release > /tmp/exp.txt
       python3 scripts/gen_experiments.py /tmp/exp.txt
"""
import sys

body = open(sys.argv[1]).read()
doc = f"""# EXPERIMENTS — paper vs. measured

The paper (PODS 2021, theory track) contains **no empirical tables**; its
two figures are illustrations of the locality definitions and its two
algorithms are pseudocode. Deliverable (d) therefore reproduces every
*constructive artifact*: for each experiment E1–E14 (index: DESIGN.md §5)
the table below records the paper's claim and what tgdkit measures. Tables
are regenerated verbatim by

```sh
cargo run -p tgdkit-bench --bin experiments --release
```

and the per-operation scaling behind them by `cargo bench --workspace`
(criterion targets `bench_chase`, `bench_hom`, `bench_locality`,
`bench_rewrite`, `bench_products`, `bench_synthesis`, `bench_decision`).

## Reading guide: paper claim → expected shape → measured

| Exp | Paper artifact | Expected shape | Measured (see tables below) |
|---|---|---|---|
| E1 | Lemma 3.6, Fig. 1 | zero locality counterexamples at the set's (n,m) profile | 0 counterexamples on all sampled instances |
| E2 | Lemmas 3.2, 3.4 | criticality and ⊗-closure hold for every family | `true` across full/linear/guarded seeds |
| E3 | Example 5.2 | oblivious extension breaks the tgd, non-oblivious doesn't | exactly the paper's fact sets, verdicts No / Yes |
| E4 | Theorem 5.6 (1)⇒(2) | the five-property bundle holds for full sets; *oblivious* closure may fail | all Yes; oblivious closure fails on some seeds (e.g. seed 1), as the paper's counterexample predicts |
| E5/E6 | §9.1 separations | both gadgets violate their refined locality; Algorithms 1–2 agree (`NotRewritable`) | Yes / Yes for both |
| E7/E8 | Thms 9.1/9.2 | candidates ≤ paper bounds; cost explodes with ar(S) (double-exponential) and grows with \\|S\\| | bounds respected with large headroom; runtime rises orders of magnitude from ar 1 → 2 |
| E9 | Appendix F | Σ ⊨ ∃x Q(x) iff Σ′ rewritable | agreement on positive and negative instances for both reductions |
| E10 | Theorem 4.1 | synthesis from the oracle is chase-verified equivalent to the hidden set | `Proved` for every case |
| E11 | substrate | chase cost grows with instance size; weak acyclicity certifies termination | see scaling table |
| E12 | Algorithm 1 at scale | rewritings are verified equivalent; negatives coincide with union-closure witnesses | every `rewritten` row verifies `Proved`; every `inconclusive` row has a union witness (so is in fact not rewritable, by the Appendix F closure argument) |
| E13 | Claims 4.5/4.6 | the extracted separating edd is violated by the non-member and entailed by Σ | `true` / `Proved` on all cases; the third case recovers `P(x) -> Q(x)` itself as the separating dependency |
| E14 | Lemmas 3.6 / 3.8, exhaustive | zero violations over EVERY instance with ≤ 2 elements | 0 violations across all bounded universes |

Notes on honest deviations:

- The `G(x,y) -> exists z : G(y,z)`-style row in E7 reports
  **inconclusive**: that input's chase diverges and the candidate space is
  budget-truncated, so the procedure refuses to guess. This is the
  documented three-valued discipline, not a wrong answer.
- The Appendix F reduction keeps the original rules inside Σ′ (the paper's
  text drops their non-guard atoms, which breaks its own `I ⊨ Σ` proof
  step); see `core::reductions` docs and DESIGN.md §3.
- Absolute times are from this machine (release build) and matter only for
  the *shape* comparisons (growth in \\|S\\|, ar(S), n, m, instance size).

## Regenerated tables

```
{body}```
"""
open('EXPERIMENTS.md','w').write(doc)
print("EXPERIMENTS.md written")
