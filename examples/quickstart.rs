//! Quickstart: parse an ontology, chase a database, ask queries.
//!
//! Run with: `cargo run --example quickstart`

use tgdkit::prelude::*;

fn main() {
    // An ontology in the Datalog± surface syntax. Predicates are declared
    // implicitly by use; `exists` introduces existential variables.
    let mut schema = Schema::default();
    let sigma = parse_tgds(
        &mut schema,
        "
        // Every employee works in some department.
        Employee(x) -> exists d : WorksIn(x, d).
        // Whatever someone works in is a department.
        WorksIn(x, d) -> Dept(d).
        // Managers are employees.
        Manages(x, d) -> Employee(x).
        // Managing a department means working in it.
        Manages(x, d) -> WorksIn(x, d).
        ",
    )
    .expect("ontology parses");
    println!("schema: {schema}");
    for tgd in &sigma {
        println!(
            "  [{}] {}",
            tgd.class().most_specific(),
            tgd.display(&schema)
        );
    }

    // A database.
    let data =
        parse_instance(&mut schema, "Employee(ann), Manages(bob, sales)").expect("data parses");
    println!("\ndatabase: {data}");
    println!(
        "data satisfies the ontology already? {}",
        satisfies_tgds(&data, &sigma)
    );

    // Chase to a universal model. Weak acyclicity certifies termination
    // before we even start.
    println!("weakly acyclic: {}", is_weakly_acyclic(&schema, &sigma));
    let result = chase(
        &data,
        &sigma,
        ChaseVariant::Restricted,
        ChaseBudget::default(),
    );
    assert!(result.terminated());
    println!(
        "chase: {} facts, {} invented nulls, {} rounds",
        result.instance.fact_count(),
        result.nulls.len(),
        result.rounds
    );
    println!("universal model: {}", result.instance);

    // Certain answers: a Boolean CQ evaluated on the universal model.
    let mut query_schema = schema.clone();
    let probe = parse_tgd(
        &mut query_schema,
        "Employee(x) -> exists d : WorksIn(x,d), Dept(d)",
    )
    .expect("query parses");
    let q = Cq::boolean(probe.head().to_vec());
    println!(
        "\n∃d WorksIn(_, d) ∧ Dept(d) certain? {}",
        q.holds_in(&result.instance)
    );

    // Entailment between dependencies: does the ontology entail that
    // managers' departments are departments?
    let derived = parse_tgd(&mut query_schema, "Manages(x, d) -> Dept(d)").unwrap();
    println!(
        "Σ ⊨ (Manages(x,d) -> Dept(d))? {:?}",
        entails(&query_schema, &sigma, &derived, ChaseBudget::default())
    );
}
