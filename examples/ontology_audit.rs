//! Audit the model-theoretic properties of an ontology (paper §3 and §5):
//! criticality, closure under direct products / intersections / unions,
//! domain independence, duplicating extensions — and locality probes.
//!
//! Run with: `cargo run --example ontology_audit`

use tgdkit::core::mv::{example_5_2, oblivious_closure_fails_on_example_5_2};
use tgdkit::core::properties::property_report;
use tgdkit::prelude::*;

fn audit(name: &str, schema: &Schema, sigma: &[Tgd]) {
    let set = TgdSet::new(schema.clone(), sigma.to_vec()).expect("valid set");
    let ontology = TgdOntology::new(set);
    let report = property_report(&ontology, sigma, 3, 42);
    println!("── {name}");
    for tgd in sigma {
        println!("   {}", tgd.display(schema));
    }
    println!("   critical (k ≤ 3):        {:?}", report.critical);
    println!("   ⊗-closed (sampled):      {:?}", report.product_closed);
    println!(
        "   ∩-closed (sampled):      {:?}",
        report.intersection_closed
    );
    println!("   ∪-closed (sampled):      {:?}", report.union_closed);
    println!(
        "   domain independent:      {:?}",
        report.domain_independent
    );
    println!("   members sampled:         {}", report.sampled_members);
}

fn main() {
    // Lemmas 3.2 and 3.4 in action: every TGD-ontology is critical and
    // ⊗-closed. Intersection/union closure varies with the class.
    {
        let mut s = Schema::default();
        let sigma = parse_tgds(&mut s, "E(x,y) -> E(y,x). P(x), E(x,y) -> P(y).").unwrap();
        audit("symmetric reachability (full tgds)", &s, &sigma);
    }
    {
        let mut s = Schema::default();
        let sigma = parse_tgds(&mut s, "P(x) -> exists z : E(x,z).").unwrap();
        audit("existential successors (linear tgds)", &s, &sigma);
    }

    // Locality probes (Def. 3.5 and §9.1): the guarded gadget is *not*
    // linear (1,0)-local.
    {
        let mut s = Schema::default();
        let sigma = parse_tgds(&mut s, "R(x), P(x) -> T(x).").unwrap();
        let set = TgdSet::new(s.clone(), sigma).unwrap();
        let witness = parse_instance(&mut s, "R(c), P(c)").unwrap();
        println!("── locality probe: Σ_G = R(x), P(x) -> T(x) on I = {witness}");
        for (flavor, name, n) in [
            (LocalityFlavor::Plain, "plain (2,0)", 2),
            (LocalityFlavor::Linear, "linear (1,0)", 1),
            (LocalityFlavor::Guarded, "guarded (2,0)", 2),
        ] {
            let v = locally_embeddable(&set, &witness, n, 0, flavor, &LocalityOptions::default());
            println!("   {name}-locally embeddable: {v:?}");
        }
        let counter = locality_counterexample(
            &set,
            &witness,
            1,
            0,
            LocalityFlavor::Linear,
            &LocalityOptions::default(),
        );
        println!("   I certifies NOT linear (1,0)-local: {counter:?}  (paper §9.1)");
    }

    // The Makowsky–Vardi counterexample (Example 5.2).
    {
        let ex = example_5_2();
        println!("── Example 5.2 (Makowsky–Vardi Lemma 7 refutation)");
        println!("   σ:  {}", ex.tgd.display(&ex.schema));
        println!("   I:  {}", ex.model);
        println!(
            "   oblivious extension:     {} (violates σ)",
            ex.oblivious_extension
        );
        println!(
            "   non-oblivious extension: {} (model of σ)",
            ex.non_oblivious_extension
        );
        let (oblivious, non_oblivious) = oblivious_closure_fails_on_example_5_2();
        println!("   closed under oblivious duplication:     {oblivious:?}");
        println!("   closed under non-oblivious duplication: {non_oblivious:?}");
    }
}
