//! The constructive content of Theorem 4.1: recover a tgd axiomatization of
//! an ontology from a membership/entailment oracle.
//!
//! Two settings are shown:
//!
//! 1. a *hidden* set of tgds, recovered through entailment alone
//!    (`recover_tgds`);
//! 2. an extensionally given finite family of instances, run through the
//!    literal Σ^∨ → Σ^∃,= → Σ^∃ pipeline of the proof (`edd_pipeline`).
//!
//! Run with: `cargo run --example synthesize_ontology`

use tgdkit::core::characterize::{edd_pipeline, recover_tgds, EddEnumOptions};
use tgdkit::core::enumerate::EnumOptions;
use tgdkit::prelude::*;

fn main() {
    // 1. Recovery from entailment.
    let mut s = Schema::default();
    let hidden = parse_tgds(&mut s, "E(x,y) -> E(y,x). P(x), E(x,y) -> P(y).").unwrap();
    let hidden_set = TgdSet::new(s.clone(), hidden).unwrap();
    println!("hidden Σ:");
    for t in hidden_set.tgds() {
        println!("   {}", t.display(&s));
    }
    let recovery = recover_tgds(
        &hidden_set,
        &EnumOptions {
            max_body_atoms: 2,
            max_head_atoms: 2,
            max_candidates: 500_000,
        },
        ChaseBudget::default(),
    );
    println!(
        "examined {} candidates in TGD_{{{},{}}}; synthesized {} tgds; Σ_synth ≡ Σ: {:?}",
        recovery.candidates,
        hidden_set.profile().0,
        hidden_set.profile().1,
        recovery.tgds.len(),
        recovery.equivalent
    );
    for t in &recovery.tgds {
        println!("   {}", t.display(&s));
    }

    // 2. The literal three-step pipeline on a finite family.
    let mut s2 = Schema::default();
    let m1 = parse_instance(&mut s2, "P(a), Q(a)").unwrap();
    let m2 = parse_instance(&mut s2, "").unwrap();
    s2.add_pred("P", 1).unwrap();
    s2.add_pred("Q", 1).unwrap();
    let family = FiniteOntology::new(s2.clone(), vec![m1, m2]);
    let pipeline = edd_pipeline(&family, 1, 0, &EddEnumOptions::default());
    println!(
        "\nfinite family over {}: |Σ^∨| = {}, |Σ^∃,=| = {} tgds + {} egds, |Σ^∃| = {}",
        s2,
        pipeline.sigma_vee.len(),
        pipeline.sigma_exists_eq.0.len(),
        pipeline.sigma_exists_eq.1.len(),
        pipeline.sigma_exists.len()
    );
    println!("Σ^∃ (the synthesized axiomatization):");
    for t in &pipeline.sigma_exists {
        println!("   {}", t.display(&s2));
    }
}
