//! Data exchange with tgds: materialize a target instance from a source
//! database under a schema mapping, and compute certain answers.
//!
//! This is the classical data-intensive application motivating
//! tgd-ontologies in the paper's introduction (Fagin–Kolaitis–Miller–Popa
//! style exchange): source-to-target tgds move data, target tgds constrain
//! it, and the chase builds the canonical universal solution.
//!
//! Run with: `cargo run --example data_exchange`

use std::ops::ControlFlow;
use tgdkit::prelude::*;
use tgdkit_hom::for_each_hom;

fn main() {
    let mut schema = Schema::default();
    // Source schema: flight legs with carriers. Target schema: routes with
    // connection hubs and carrier directory.
    let mapping = parse_tgds(
        &mut schema,
        "
        // Source-to-target: every leg becomes a route with some price class.
        Leg(src, dst, carrier) -> exists p : Route(src, dst, p).
        Leg(src, dst, carrier) -> Carrier(carrier).
        // Target constraint: routes compose through hubs.
        Route(x, y, p), Route(y, z, q) -> exists r : Route(x, z, r).
        // Every route endpoint is an airport.
        Route(x, y, p) -> Airport(x).
        Route(x, y, p) -> Airport(y).
        ",
    )
    .expect("mapping parses");

    let source = parse_instance(
        &mut schema,
        "Leg(edi, lhr, ba), Leg(lhr, sfo, ba), Leg(sfo, hnd, jal)",
    )
    .expect("source parses");

    println!("source: {source}");

    // The route-composition rule feeds Route back into Route through an
    // existential: not weakly acyclic, so certify nothing — but the
    // restricted chase still terminates here because compositions reuse
    // existing witnesses only when present; budget-bound it.
    println!("weakly acyclic: {}", is_weakly_acyclic(&schema, &mapping));
    let solution = chase(
        &source,
        &mapping,
        ChaseVariant::Restricted,
        ChaseBudget::default(),
    );
    println!(
        "universal solution: {} facts ({} nulls), terminated: {}",
        solution.instance.fact_count(),
        solution.nulls.len(),
        solution.terminated()
    );

    // Certain answers to "which airports are reachable from edi?": evaluate
    // on the universal solution and keep answers without nulls.
    let mut qschema = schema.clone();
    let probe = parse_tgd(&mut qschema, "Route(x, y, p) -> Reach(x, y)").unwrap();
    let edi = solution.instance.elem_by_name("edi").expect("edi exists");
    let mut reachable = Vec::new();
    for_each_hom(
        probe.body(),
        probe.var_count(),
        &solution.instance,
        &vec![None; probe.var_count()],
        &mut |binding| {
            let (x, y) = (binding[0].unwrap(), binding[1].unwrap());
            if x == edi && !solution.nulls.contains(&y) && !reachable.contains(&y) {
                reachable.push(y);
            }
            ControlFlow::Continue(())
        },
    );
    let names: Vec<&str> = reachable
        .iter()
        .map(|e| solution.instance.name_of(*e).unwrap_or("?"))
        .collect();
    println!("certain destinations from edi: {names:?}");
    assert!(names.contains(&"lhr") && names.contains(&"sfo") && names.contains(&"hnd"));

    // Exchange respects the mapping: the solution is a model.
    assert!(satisfies_tgds(&solution.instance, &mapping));
    println!("solution satisfies the mapping: true");
}
