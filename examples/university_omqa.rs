//! Ontology-mediated query answering over a university domain: a realistic
//! mini-ontology exercising certain answers, provenance explanations,
//! single-head normalization, and the expressibility analysis — the
//! workflow a downstream user of tgdkit would run on their own ontology.
//!
//! Run with: `cargo run --example university_omqa`

use tgdkit::chase_crate::chase_with_provenance;
use tgdkit::core::expressibility::{is_linear_expressible, union_closure_witness};
use tgdkit::logic::single_head;
use tgdkit::prelude::*;

fn main() {
    let mut schema = Schema::default();
    let ontology = parse_tgds(
        &mut schema,
        "
        // Structural axioms.
        Professor(x) -> Faculty(x).
        Lecturer(x) -> Faculty(x).
        Faculty(x) -> exists d : MemberOf(x, d), Department(d).
        Teaches(x, c) -> Faculty(x).
        Teaches(x, c) -> Course(c).
        Enrolled(s, c) -> Student(s).
        Enrolled(s, c) -> Course(c).
        // Every course has a responsible teacher and a home department.
        Course(c) -> exists t : Teaches(t, c).
        Course(c) -> exists d : OfferedBy(c, d), Department(d).
        // Advising relates students to faculty.
        AdvisedBy(s, p) -> Student(s).
        AdvisedBy(s, p) -> Professor(p).
        ",
    )
    .expect("ontology parses");
    let set = TgdSet::new(schema.clone(), ontology.clone()).expect("valid set");
    println!(
        "ontology: {} rules over {} ({} linear / guarded: {}, weakly acyclic: {})",
        set.len(),
        schema,
        set.tgds().iter().filter(|t| t.is_linear()).count(),
        set.is_guarded(),
        is_weakly_acyclic(&schema, set.tgds()),
    );

    // A small database — deliberately incomplete: ada has no explicit
    // department; the logic course has no explicit teacher.
    let data = parse_instance(
        &mut schema,
        "Professor(ada), Teaches(ada, databases), Enrolled(sam, databases),
         Enrolled(sam, logic), AdvisedBy(sam, ada)",
    )
    .expect("data parses");
    println!("\ndatabase: {data}");

    // Chase with provenance.
    let (solution, provenance) = chase_with_provenance(
        &data,
        set.tgds(),
        ChaseVariant::Restricted,
        ChaseBudget::default(),
    );
    println!(
        "universal model: {} facts ({} invented), {} derivation steps",
        solution.instance.fact_count(),
        solution.nulls.len(),
        provenance.steps.len()
    );

    // Certain answers: which students certainly attend a course that is
    // offered by some department?
    let mut qschema = schema.clone();
    let probe = parse_tgd(&mut qschema, "Enrolled(s, c), OfferedBy(c, d) -> Ans(s)").unwrap();
    let q = Cq::new(probe.body().to_vec(), vec![Var(0)]).unwrap();
    let result = certain_answers(&data, set.tgds(), &q, ChaseBudget::default());
    let names: Vec<&str> = result
        .answers
        .iter()
        .map(|t| result.chase.instance.name_of(t[0]).unwrap_or("?"))
        .collect();
    println!(
        "\ncertain students in department-offered courses ({}): {names:?}",
        if result.complete {
            "complete"
        } else {
            "partial"
        }
    );

    // Explain a derived fact: why is ada a member of some department?
    let member_of = schema.pred_id("MemberOf").unwrap();
    let derived = solution
        .instance
        .facts()
        .find(|f| f.pred == member_of)
        .expect("membership derived");
    let step = provenance.explain(&derived).expect("explained");
    println!(
        "explanation: fact #{derived:?} derived by rule {} ({})",
        step.tgd_index,
        set.tgds()[step.tgd_index].display(&schema)
    );

    // Normalization: split multi-atom heads for single-head consumers.
    let normalized = single_head(&set).unwrap();
    println!(
        "\nsingle-head normal form: {} rules (+{} auxiliary predicates)",
        normalized.set.len(),
        normalized.auxiliaries.len()
    );

    // Expressibility: is this (linear) fragment really linear-expressible?
    let linear_rules: Vec<Tgd> = set
        .tgds()
        .iter()
        .filter(|t| t.is_linear())
        .cloned()
        .collect();
    let linear_set = TgdSet::new(schema.clone(), linear_rules).unwrap();
    println!(
        "linear fragment linear-expressible: {:?} (union witness: {})",
        is_linear_expressible(&linear_set, &RewriteOptions::default(), 7),
        union_closure_witness(&linear_set, 4, 7).is_some()
    );
}
