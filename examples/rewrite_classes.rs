//! The rewriting procedures of paper §9.2: decide whether a guarded
//! ontology can be expressed with linear tgds (Algorithm 1) and whether a
//! frontier-guarded one can be expressed with guarded tgds (Algorithm 2) —
//! and build the rewriting when it exists.
//!
//! Run with: `cargo run --example rewrite_classes`

use tgdkit::core::enumerate::EnumOptions;
use tgdkit::prelude::*;

fn show(outcome: &RewriteOutcome, schema: &Schema) {
    match outcome {
        RewriteOutcome::Rewritten(tgds) => {
            println!("   rewritable; equivalent set:");
            for t in tgds {
                println!("      {}", t.display(schema));
            }
        }
        RewriteOutcome::NotRewritable => println!("   NOT rewritable (definitive)"),
        RewriteOutcome::Inconclusive => println!("   inconclusive within budgets"),
        RewriteOutcome::Cancelled => println!("   cancelled before a verdict"),
        RewriteOutcome::Suspended => println!("   suspended on the memory budget"),
    }
}

fn main() {
    // Small budgets suffice to *find* rewritings; the unary §9.1 gadgets
    // additionally get budgets covering their whole candidate space, so
    // negative answers are definitive.
    let opts = RewriteOptions {
        parallel: true,
        ..Default::default()
    };
    let exhaustive_unary = RewriteOptions {
        enumeration: EnumOptions {
            max_head_atoms: 8,
            max_body_atoms: 8,
            max_candidates: 200_000,
        },
        parallel: true,
        ..Default::default()
    };

    // A guarded set whose side atom is semantically redundant: Algorithm 1
    // finds the linear equivalent.
    {
        let mut s = Schema::default();
        let tgds = parse_tgds(&mut s, "R(x,y), R(x,x) -> T(x). R(x,y) -> T(x).").unwrap();
        let set = TgdSet::new(s.clone(), tgds).unwrap();
        println!("── guarded -> linear: redundant side atom");
        for t in set.tgds() {
            println!("   {}", t.display(&s));
        }
        show(&guarded_to_linear(&set, &opts), &s);
    }

    // The §9.1 separation gadget: provably not linearizable.
    {
        let mut s = Schema::default();
        let tgds = parse_tgds(&mut s, "R(x), P(x) -> T(x).").unwrap();
        let set = TgdSet::new(s.clone(), tgds).unwrap();
        println!("── guarded -> linear: Σ_G of §9.1");
        show(&guarded_to_linear(&set, &exhaustive_unary), &s);
    }

    // A frontier-guarded set whose non-guard side condition is implied:
    // Algorithm 2 finds a guarded equivalent.
    {
        let mut s = Schema::default();
        let tgds = parse_tgds(&mut s, "R(x,y) -> P(x). R(x,y), P(x) -> T(x).").unwrap();
        let set = TgdSet::new(s.clone(), tgds).unwrap();
        println!("── frontier-guarded -> guarded: implied side condition");
        show(&frontier_guarded_to_guarded(&set, &opts), &s);
    }

    // The other §9.1 gadget: provably not guardable.
    {
        let mut s = Schema::default();
        let tgds = parse_tgds(&mut s, "R(x), P(y) -> T(x).").unwrap();
        let set = TgdSet::new(s.clone(), tgds).unwrap();
        println!("── frontier-guarded -> guarded: Σ_F of §9.1");
        show(&frontier_guarded_to_guarded(&set, &exhaustive_unary), &s);
    }

    // The Appendix F reduction, end to end: atomic entailment becomes
    // rewritability.
    {
        use tgdkit::core::reductions::guarded_entailment_to_linear_rewritability;
        let mut s = Schema::default();
        let tgds = parse_tgds(&mut s, "true -> exists u : P(u). P(x) -> Q(x).").unwrap();
        let set = TgdSet::new(s.clone(), tgds).unwrap();
        let q = s.pred_id("Q").unwrap();
        let reduction = guarded_entailment_to_linear_rewritability(&set, q).unwrap();
        println!("── Appendix F reduction (positive instance: Σ ⊨ ∃x Q(x))");
        for t in reduction.sigma_prime.tgds() {
            println!("   {}", t.display(reduction.sigma_prime.schema()));
        }
        let small = RewriteOptions {
            enumeration: EnumOptions {
                max_head_atoms: 2,
                max_body_atoms: 8,
                max_candidates: 200_000,
            },
            parallel: true,
            ..Default::default()
        };
        show(
            &guarded_to_linear(&reduction.sigma_prime, &small),
            reduction.sigma_prime.schema(),
        );
    }
}
