//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the rand 0.9 API that tgdkit actually uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods [`Rng::random_range`] / [`Rng::random_bool`].
//!
//! The generator is deterministic (splitmix64 seeding into xoshiro256**),
//! which is all the workload/instance generators require: stable,
//! well-distributed streams keyed by a `u64` seed. The streams differ from
//! upstream rand's, so generated workloads are not bit-compatible with runs
//! against the real crate — they are, however, stable across runs and
//! platforms, which is what the test suite and benches depend on.

/// Random number generators.
pub mod rngs {
    /// A deterministic seeded generator (xoshiro256** core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seeding constructor trait (rand 0.9 subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 expansion of the seed into the xoshiro state, as
        // recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Integer types that [`Rng::random_range`] can sample uniformly.
pub trait UniformInt: Copy + PartialOrd {
    /// Converts to the sampling domain.
    fn to_u64(self) -> u64;
    /// Converts back from the sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// The generator interface (rand 0.9 subset).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range. Panics if the range is empty.
    fn random_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "random_range called with an empty range");
        let span = hi - lo;
        // Debiased multiply-shift rejection sampling (Lemire).
        loop {
            let r = self.next_u64();
            let hi_part = ((r as u128 * span as u128) >> 64) as u64;
            let lo_part = (r as u128 * span as u128) as u64;
            if lo_part >= span || lo_part >= span.wrapping_neg() % span {
                return T::from_u64(lo + hi_part);
            }
        }
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 uniform mantissa bits, the standard double-in-[0,1) recipe.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256**
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            seen[v] = true;
        }
        // All values of a small range appear over 1000 draws.
        assert!(seen[3..10].iter().all(|&s| s));
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "got {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
