//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the criterion API its benches use: `Criterion`,
//! `benchmark_group` with `warm_up_time` / `measurement_time` /
//! `sample_size`, `bench_function` / `bench_with_input`, `BenchmarkId`, and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up for the configured warm-up
//! time, then takes `sample_size` samples (auto-scaled iteration batches)
//! within the measurement time and reports min / mean / max per-iteration
//! wall time on stdout. There are no plots, no statistics beyond the three
//! summary numbers, and no baseline comparisons — enough to observe
//! relative speedups locally, not a criterion replacement.

use std::fmt;
use std::time::{Duration, Instant};

/// A benchmark identifier: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Runs timed iterations of one benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        while warm_start.elapsed() < self.warm_up || iters_done == 0 {
            std::hint::black_box(routine());
            iters_done += 1;
            if iters_done >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / iters_done.max(1) as u32;
        // Batch size so one sample costs ~ measurement_time / sample_size.
        let budget_per_sample = self.measurement / self.sample_size.max(1) as u32;
        let batch = if per_iter.is_zero() {
            64
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u32
        };
        let deadline = Instant::now() + self.measurement;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn run_one(
    full_label: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    f: impl FnOnce(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        warm_up,
        measurement,
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{full_label:<48} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{full_label:<48} time: [{} {} {}]",
        format_duration(min),
        format_duration(mean),
        format_duration(max),
    );
}

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Upstream parses CLI flags here; the stand-in accepts and ignores
    /// them (so `cargo bench -- <filter>` does not error out).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            warm_up: None,
            measurement: None,
            sample_size: None,
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let id = id.into();
        run_one(
            &id.label,
            self.warm_up,
            self.measurement,
            self.sample_size,
            f,
        );
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }
}

/// A group of benchmarks sharing a name prefix and timing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up: Option<Duration>,
    measurement: Option<Duration>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up time for the group.
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.warm_up = Some(dur);
        self
    }

    /// Sets the measurement time for the group.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement = Some(dur);
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` under `group_name/id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.warm_up.unwrap_or(self.criterion.warm_up),
            self.measurement.unwrap_or(self.criterion.measurement),
            self.sample_size.unwrap_or(self.criterion.sample_size),
            f,
        );
    }

    /// Benchmarks `f` with a borrowed input under `group_name/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (a no-op in the stand-in; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a benchmark group function (criterion API subset: the plain
/// `criterion_group!(name, target, ...)` form).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            sample_size: 3,
        };
        let mut group = c.benchmark_group("smoke");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.sample_size(3);
        let mut ran = false;
        group.bench_function(BenchmarkId::new("id", 7), |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2));
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| std::hint::black_box(0)));
        assert!(ran);
    }
}
