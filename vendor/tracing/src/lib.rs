//! Offline stand-in for the `tracing` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the tracing 0.1 API that tgdkit-serve uses:
//! [`Span`]s created by the [`span!`]/[`info_span!`] family (entered via
//! [`Span::enter`] or [`Span::in_scope`]) and the leveled event macros
//! ([`trace!`] through [`error!`]).
//!
//! Unlike upstream tracing there is no subscriber registry: events and
//! span enter/exit lines are written to stderr, prefixed with the active
//! span stack, and only when the `TGDKIT_TRACE` environment variable
//! enables the event's level (`error` < `warn` < `info` < `debug` <
//! `trace`; unset means silent). Formatting cost is only paid when
//! emission is on, so instrumented hot paths stay cheap in production.
//! The field syntax accepted is the `key = value` subset (plus a trailing
//! format string) — no `%`/`?` sigils and no field recording after
//! creation, which is all this workspace needs.

use std::cell::RefCell;
use std::fmt;
use std::sync::OnceLock;

/// Verbosity level of a span or event, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or isolation-breaking conditions.
    ERROR,
    /// Degraded but continuing.
    WARN,
    /// Request lifecycle landmarks.
    INFO,
    /// Scheduler decisions, cache traffic.
    DEBUG,
    /// Per-quantum minutiae.
    TRACE,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::ERROR => "ERROR",
            Level::WARN => "WARN",
            Level::INFO => "INFO",
            Level::DEBUG => "DEBUG",
            Level::TRACE => "TRACE",
        }
    }
}

/// The maximum level `TGDKIT_TRACE` enables, parsed once per process.
/// `None` (unset/unrecognized) disables all emission.
fn max_level() -> Option<Level> {
    static CACHE: OnceLock<Option<Level>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        let var = std::env::var("TGDKIT_TRACE").ok()?;
        match var.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::ERROR),
            "warn" => Some(Level::WARN),
            "info" | "1" | "true" => Some(Level::INFO),
            "debug" => Some(Level::DEBUG),
            "trace" => Some(Level::TRACE),
            _ => None,
        }
    })
}

/// `true` when events at `level` should be written to stderr.
#[doc(hidden)]
pub fn level_enabled(level: Level) -> bool {
    max_level().is_some_and(|max| level <= max)
}

thread_local! {
    /// Names of the spans currently entered on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Writes one event line: `LEVEL span.path: message`.
#[doc(hidden)]
pub fn emit(level: Level, args: fmt::Arguments<'_>) {
    if !level_enabled(level) {
        return;
    }
    let path = SPAN_STACK.with(|s| s.borrow().join("."));
    if path.is_empty() {
        eprintln!("{:5} {args}", level.as_str());
    } else {
        eprintln!("{:5} {path}: {args}", level.as_str());
    }
}

/// A named span. Entering pushes the name onto a thread-local stack that
/// prefixes every event emitted while the guard lives.
#[derive(Debug, Clone)]
pub struct Span {
    /// `None` for [`Span::none`] — entering is a no-op.
    name: Option<&'static str>,
    level: Level,
}

impl Span {
    /// Creates a span (used by the [`span!`] macros; fields beyond the
    /// name are rendered once at creation when emission is on).
    #[doc(hidden)]
    pub fn make(level: Level, name: &'static str, fields: Option<fmt::Arguments<'_>>) -> Span {
        if level_enabled(level) {
            if let Some(fields) = fields {
                emit(level, format_args!("new span {name}{{{fields}}}"));
            }
        }
        Span {
            name: Some(name),
            level,
        }
    }

    /// A disabled span: entering it changes nothing.
    pub fn none() -> Span {
        Span {
            name: None,
            level: Level::TRACE,
        }
    }

    /// Enters the span, returning a guard that exits it on drop.
    pub fn enter(&self) -> Entered {
        if let Some(name) = self.name {
            SPAN_STACK.with(|s| s.borrow_mut().push(name));
            Entered { active: true }
        } else {
            Entered { active: false }
        }
    }

    /// Runs `f` inside the span.
    pub fn in_scope<T>(&self, f: impl FnOnce() -> T) -> T {
        let _guard = self.enter();
        f()
    }

    /// The span's level (upstream parity; used by tests).
    pub fn level(&self) -> Level {
        self.level
    }
}

/// Guard returned by [`Span::enter`]; pops the span stack on drop.
pub struct Entered {
    active: bool,
}

impl Drop for Entered {
    fn drop(&mut self) {
        if self.active {
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Creates a [`Span`]: `span!(Level::INFO, "name")` or
/// `span!(Level::INFO, "name", key = value, ...)`.
#[macro_export]
macro_rules! span {
    ($lvl:expr, $name:expr) => {
        $crate::Span::make($lvl, $name, ::core::option::Option::None)
    };
    ($lvl:expr, $name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        $crate::Span::make(
            $lvl,
            $name,
            ::core::option::Option::Some(::core::format_args!(
                ::core::concat!($(::core::stringify!($key), "={}", " "),+),
                $($val),+
            )),
        )
    };
}

/// `span!` at [`Level::TRACE`].
#[macro_export]
macro_rules! trace_span {
    ($($tt:tt)*) => { $crate::span!($crate::Level::TRACE, $($tt)*) };
}

/// `span!` at [`Level::DEBUG`].
#[macro_export]
macro_rules! debug_span {
    ($($tt:tt)*) => { $crate::span!($crate::Level::DEBUG, $($tt)*) };
}

/// `span!` at [`Level::INFO`].
#[macro_export]
macro_rules! info_span {
    ($($tt:tt)*) => { $crate::span!($crate::Level::INFO, $($tt)*) };
}

/// `span!` at [`Level::WARN`].
#[macro_export]
macro_rules! warn_span {
    ($($tt:tt)*) => { $crate::span!($crate::Level::WARN, $($tt)*) };
}

/// `span!` at [`Level::ERROR`].
#[macro_export]
macro_rules! error_span {
    ($($tt:tt)*) => { $crate::span!($crate::Level::ERROR, $($tt)*) };
}

/// Emits an event at an explicit level: `event!(Level::INFO, "fmt", ...)`.
#[macro_export]
macro_rules! event {
    ($lvl:expr, $($arg:tt)+) => {
        if $crate::level_enabled($lvl) {
            $crate::emit($lvl, ::core::format_args!($($arg)+));
        }
    };
}

/// Emits a [`Level::TRACE`] event.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)+) => { $crate::event!($crate::Level::TRACE, $($arg)+) };
}

/// Emits a [`Level::DEBUG`] event.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)+) => { $crate::event!($crate::Level::DEBUG, $($arg)+) };
}

/// Emits a [`Level::INFO`] event.
#[macro_export]
macro_rules! info {
    ($($arg:tt)+) => { $crate::event!($crate::Level::INFO, $($arg)+) };
}

/// Emits a [`Level::WARN`] event.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)+) => { $crate::event!($crate::Level::WARN, $($arg)+) };
}

/// Emits a [`Level::ERROR`] event.
#[macro_export]
macro_rules! error {
    ($($arg:tt)+) => { $crate::event!($crate::Level::ERROR, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_from_severe_to_verbose() {
        assert!(Level::ERROR < Level::WARN);
        assert!(Level::WARN < Level::INFO);
        assert!(Level::INFO < Level::DEBUG);
        assert!(Level::DEBUG < Level::TRACE);
    }

    #[test]
    fn span_stack_nests_and_unwinds() {
        let outer = span!(Level::INFO, "outer");
        let inner = debug_span!("inner", tenant = 3);
        {
            let _o = outer.enter();
            let depth_inside = {
                let _i = inner.enter();
                SPAN_STACK.with(|s| s.borrow().clone())
            };
            assert_eq!(depth_inside, vec!["outer", "inner"]);
            assert_eq!(SPAN_STACK.with(|s| s.borrow().clone()), vec!["outer"]);
        }
        assert!(SPAN_STACK.with(|s| s.borrow().is_empty()));
    }

    #[test]
    fn none_span_is_inert() {
        let s = Span::none();
        let _g = s.enter();
        assert!(SPAN_STACK.with(|s| s.borrow().is_empty()));
    }

    #[test]
    fn in_scope_returns_value() {
        let s = info_span!("scope");
        assert_eq!(s.in_scope(|| 41 + 1), 42);
        assert!(SPAN_STACK.with(|s| s.borrow().is_empty()));
    }

    #[test]
    fn macros_compile_with_fields_and_format_args() {
        // Emission is off (TGDKIT_TRACE unset in tests), so these only
        // exercise the macro expansions.
        trace!("t {}", 1);
        debug!("d");
        info!("request {} done", "r1");
        warn!("w");
        error!("e");
        event!(Level::INFO, "explicit {}", 2);
        let _s = warn_span!("w");
        let _s = error_span!("e", code = 7);
        let _s = trace_span!("t");
    }
}
