//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the proptest 1.x API the test suite uses: the
//! [`proptest!`] macro over `ident in strategy` arguments, the
//! `prop_assert*` / [`prop_assume!`] macros, integer-range / string /
//! [`strategy::Just`] / [`prop_oneof!`] / [`collection::vec`] strategies,
//! and [`test_runner::ProptestConfig::with_cases`].
//!
//! Semantics: each test runs `cases` deterministic pseudo-random cases
//! (seeded from the test's name, so failures reproduce across runs);
//! `prop_assume!` rejections are retried without counting toward the case
//! budget. There is **no shrinking** — a failing case reports its inputs'
//! case index instead.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, UniformInt};

    /// The deterministic RNG handed to strategies.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// The next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform integer in `[lo, hi)`.
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            if lo >= hi {
                lo
            } else {
                self.0.random_range(lo..hi)
            }
        }
    }

    /// A value generator. Unlike upstream proptest there is no shrinking:
    /// `generate` produces the final value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T: UniformInt> Strategy for core::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::from_u64(rng.below(self.start.to_u64(), self.end.to_u64()))
        }
    }

    /// A strategy producing clones of one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (the [`crate::prop_oneof!`]
    /// expansion).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty arm list.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(0, self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// String strategy from a regex-shaped pattern. Only the `.{lo,hi}`
    /// shape the test suite uses is interpreted (arbitrary characters,
    /// length in `[lo, hi]`); any other pattern falls back to length 0–32.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 32));
            let len = rng.below(lo as u64, hi as u64 + 1) as usize;
            (0..len)
                .map(|_| {
                    // Mostly printable ASCII, sprinkled with whitespace and
                    // multi-byte characters to stress the parsers.
                    match rng.below(0, 20) {
                        0 => '\n',
                        1 => '\t',
                        2 => '→',
                        3 => 'λ',
                        _ => (rng.below(0x20, 0x7f) as u8) as char,
                    }
                })
                .collect()
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};

    /// A strategy for vectors of `element` values with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.start as u64, self.size.end as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use super::strategy::TestRng;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::hash::{DefaultHasher, Hash, Hasher};

    /// Test-loop configuration (subset: case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed — the test fails.
        Fail(String),
        /// A `prop_assume!` precondition failed — the case is retried.
        Reject(String),
    }

    /// Drives the case loop for one `proptest!`-generated test.
    pub struct TestRunner {
        config: ProptestConfig,
        name: &'static str,
        rng: TestRng,
    }

    impl TestRunner {
        /// Creates a runner seeded deterministically from the test name.
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            let mut hasher = DefaultHasher::new();
            name.hash(&mut hasher);
            TestRunner {
                config,
                name,
                rng: TestRng(StdRng::seed_from_u64(hasher.finish())),
            }
        }

        /// Runs `case` until `cases` cases pass; panics on the first
        /// failure. Rejections retry with fresh inputs, with a global cap.
        pub fn run(&mut self, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
            let mut passed = 0u32;
            let mut rejected = 0u64;
            let max_rejects = 64 * u64::from(self.config.cases.max(16));
            while passed < self.config.cases {
                match case(&mut self.rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > max_rejects {
                            panic!(
                                "proptest {}: too many prop_assume! rejections \
                                 ({rejected} rejects for {passed} passes)",
                                self.name
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {} (after {rejected} rejects): {msg}",
                            self.name,
                            passed + 1
                        );
                    }
                }
            }
        }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner =
                    $crate::test_runner::TestRunner::new($cfg, stringify!($name));
                runner.run(|rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "{} (left: {:?}, right: {:?})",
                format_args!($($fmt)*), l, r
            )));
        }
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "{} (both: {:?})",
                format_args!($($fmt)*), l
            )));
        }
    }};
}

/// Discards the current case (retried with fresh inputs) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(Box::new($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..9, b in 0usize..2) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b < 2);
        }

        #[test]
        fn assume_retries(a in 0u64..100) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }

        #[test]
        fn oneof_and_vec(parts in crate::collection::vec(
            prop_oneof![Just("a".to_string()), Just("b".to_string())],
            0..5,
        )) {
            prop_assert!(parts.len() < 5);
            prop_assert!(parts.iter().all(|p| p == "a" || p == "b"));
        }

        #[test]
        fn string_pattern_lengths(text in ".{0,10}") {
            prop_assert!(text.chars().count() <= 10);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(a in 0u64..10) {
                prop_assert!(a > 100, "impossible: {}", a);
            }
        }
        inner();
    }
}
