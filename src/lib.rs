//! # tgdkit
//!
//! A Rust implementation of *Model-theoretic Characterizations of
//! Rule-based Ontologies* (Console, Kolaitis, Pieris; PODS 2021): tgd
//! ontologies, their model-theoretic characterizations via criticality,
//! closure under direct products, and (n,m)-locality, and the effective
//! rewriting procedures between the linear / guarded / frontier-guarded
//! classes.
//!
//! The facade re-exports the workspace crates:
//!
//! - [`logic`] — schemas, atoms, tgds/egds/edds, parser, canonicalization;
//! - [`instance`] — relational instances and instance algebra (products,
//!   intersections, critical instances, duplicating extensions);
//! - [`hom`] — homomorphisms, conjunctive queries, isomorphism, cores;
//! - [`chase_crate`] — chase engines, termination certificates, entailment;
//! - [`core`] — ontologies, closure properties, locality, separations,
//!   synthesis, and the rewriting algorithms;
//! - [`store`] — the durable knowledge-base store: checksummed snapshot +
//!   WAL segments over the incremental chase, crash-consistent recovery;
//! - [`serve`] — the multi-tenant entailment service: wire protocol,
//!   preemptive scheduler, and the `tgdkit-serve` binary's internals.
//!
//! ## Quickstart
//!
//! ```
//! use tgdkit::prelude::*;
//!
//! // Parse an ontology specification and a data instance.
//! let mut schema = Schema::default();
//! let sigma = parse_tgds(&mut schema, "
//!     Employee(x) -> exists d : WorksIn(x, d).
//!     WorksIn(x, d) -> Dept(d).
//! ").unwrap();
//! let data = parse_instance(&mut schema, "Employee(ann)").unwrap();
//!
//! // Chase the data to a universal model and query it.
//! let result = chase(&data, &sigma, ChaseVariant::Restricted, ChaseBudget::default());
//! assert!(result.terminated());
//! assert_eq!(result.instance.fact_count(), 3);
//! ```

pub use tgdkit_chase as chase_crate;
pub use tgdkit_core as core;
pub use tgdkit_hom as hom;
pub use tgdkit_instance as instance;
pub use tgdkit_logic as logic;
pub use tgdkit_serve as serve;
pub use tgdkit_store as store;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use tgdkit_chase::{
        certain_answers, certainly_holds, chase, chase_checkpointing, chase_configured,
        chase_governed, chase_resume, chase_sharded, chase_sharded_checkpointing,
        chase_sharded_governed, entails, entails_all, entails_auto, entails_auto_cached,
        entails_auto_governed, entails_batch, entails_batch_checkpointing, entails_batch_resume,
        entails_linear, equivalent, is_weakly_acyclic, satisfies_tgd, satisfies_tgds, shard_stats,
        shards_from_env, BatchCheckpoint, CancelToken, CertainAnswers, ChaseBudget,
        ChaseCheckpoint, ChaseOutcome, ChaseStats, ChaseVariant, CheckpointError, EntailCache,
        Entailment, MemoryAccountant, ShardStats, TriggerSearch,
    };
    pub use tgdkit_core::{
        frontier_guarded_to_guarded, frontier_guarded_to_guarded_cached,
        frontier_guarded_to_guarded_checkpointing, frontier_guarded_to_guarded_governed,
        frontier_guarded_to_guarded_resume, guarded_to_linear, guarded_to_linear_cached,
        guarded_to_linear_checkpointing, guarded_to_linear_governed, guarded_to_linear_resume,
        locality_counterexample, locally_embeddable, DependencyOntology, FiniteOntology,
        LocalityFlavor, LocalityOptions, Ontology, RewriteCheckpoint, RewriteOptions,
        RewriteOutcome, RewriteStats, TgdOntology, Verdict,
    };
    pub use tgdkit_hom::{are_isomorphic, core_of, embeds_fixing, find_instance_hom, Cq};
    pub use tgdkit_instance::{
        critical_instance, direct_product, intersection, is_critical,
        non_oblivious_duplicating_extension, oblivious_duplicating_extension, parse_instance,
        shard_of, union, Elem, Instance, InstanceGen, ShardedInstance,
    };
    pub use tgdkit_logic::{
        parse_dependencies, parse_program, parse_tgd, parse_tgds, Dependency, Schema, Tgd, TgdSet,
        Var,
    };
}
