//! The tgdkit command-line tool.
//!
//! ```text
//! tgdkit check   <rules-file>                        classify and profile a rule set
//! tgdkit chase   <rules-file> <data-file>            chase a database to a universal model
//! tgdkit certain <rules-file> <data-file> <query>    certain answers of a query
//! tgdkit entail  <rules-file> <tgd>                  decide Σ ⊨ σ
//! tgdkit rewrite <linear|guarded> <rules-file>       Algorithms 1 / 2 of PODS'21 §9.2
//! tgdkit audit   <rules-file>                        §3 model-theoretic property report
//! tgdkit separate <rules-file> <data-file> <n> <m>   separating edd for a non-member
//! ```
//!
//! Rules use the Datalog± surface syntax (`R(x,y) -> exists z : S(y,z).`),
//! data uses instance literals (`{ R(a,b), S(b,c) }`). Queries are written
//! as tgds whose head atom collects the answer variables, e.g.
//! `E(x,y), E(y,z) -> Ans(x,z)`.

use std::fmt::Write as _;
use std::process::ExitCode;
use tgdkit::core::diagram::{separating_edd, DiagramOptions};
use tgdkit::core::expressibility::{disjoint_union_closure_witness, union_closure_witness};
use tgdkit::core::properties::property_report;
use tgdkit::prelude::*;

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn load_rules(schema: &mut Schema, path: &str) -> Result<Vec<Tgd>, String> {
    let text = read_file(path)?;
    tgdkit::logic::parse_tgds(schema, &text).map_err(|e| format!("{path}: {e}"))
}

fn load_data(schema: &mut Schema, path: &str) -> Result<Instance, String> {
    let text = read_file(path)?;
    parse_instance(schema, &text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_check(rules_path: &str) -> Result<String, String> {
    let mut schema = Schema::default();
    let tgds = load_rules(&mut schema, rules_path)?;
    let set = TgdSet::new(schema.clone(), tgds).map_err(|e| e.to_string())?;
    let (n, m) = set.profile();
    let mut out = String::new();
    let _ = writeln!(out, "schema: {schema}");
    let _ = writeln!(out, "rules: {} (profile: TGD_{{{n},{m}}})", set.len());
    for tgd in set.tgds() {
        let _ = writeln!(
            out,
            "  [{:<16}] {}",
            tgd.class().most_specific(),
            tgd.display(&schema)
        );
    }
    let _ = writeln!(
        out,
        "classes: full={} linear={} guarded={} frontier-guarded={}",
        set.is_full(),
        set.is_linear(),
        set.is_guarded(),
        set.is_frontier_guarded()
    );
    let _ = writeln!(
        out,
        "weakly acyclic (chase terminates on every input): {}",
        is_weakly_acyclic(&schema, set.tgds())
    );
    Ok(out)
}

fn cmd_chase(rules_path: &str, data_path: &str) -> Result<String, String> {
    let mut schema = Schema::default();
    let tgds = load_rules(&mut schema, rules_path)?;
    let data = load_data(&mut schema, data_path)?;
    // Re-validate the rules against the (possibly extended) schema.
    let set = TgdSet::new(schema, tgds).map_err(|e| e.to_string())?;
    let result = chase(
        &data,
        set.tgds(),
        ChaseVariant::Restricted,
        ChaseBudget::default(),
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} facts, {} nulls, {} rounds, {}",
        result.instance.fact_count(),
        result.nulls.len(),
        result.rounds,
        if result.terminated() {
            "terminated (universal model)"
        } else {
            "budget exceeded (partial chase)"
        }
    );
    let _ = writeln!(out, "{}", result.instance);
    Ok(out)
}

fn cmd_certain(rules_path: &str, data_path: &str, query_text: &str) -> Result<String, String> {
    let mut schema = Schema::default();
    let tgds = load_rules(&mut schema, rules_path)?;
    let data = load_data(&mut schema, data_path)?;
    let query_tgd = tgdkit::logic::parse_tgd(&mut schema, query_text).map_err(|e| e.to_string())?;
    let set = TgdSet::new(schema, tgds).map_err(|e| e.to_string())?;
    let answer_vars: Vec<Var> = query_tgd.head()[0].args.to_vec();
    let q = Cq::new(query_tgd.body().to_vec(), answer_vars).map_err(|e| e.to_string())?;
    let result = certain_answers(&data, set.tgds(), &q, ChaseBudget::default());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} certain answers ({}):",
        result.answers.len(),
        if result.complete {
            "complete"
        } else {
            "sound but possibly incomplete"
        }
    );
    for tuple in &result.answers {
        let rendered: Vec<String> = tuple
            .iter()
            .map(|e| {
                result
                    .chase
                    .instance
                    .name_of(*e)
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("e{}", e.0))
            })
            .collect();
        let _ = writeln!(out, "  ({})", rendered.join(", "));
    }
    Ok(out)
}

fn cmd_entail(rules_path: &str, tgd_text: &str) -> Result<String, String> {
    let mut schema = Schema::default();
    let tgds = load_rules(&mut schema, rules_path)?;
    let candidate = tgdkit::logic::parse_tgd(&mut schema, tgd_text).map_err(|e| e.to_string())?;
    let set = TgdSet::new(schema.clone(), tgds).map_err(|e| e.to_string())?;
    let verdict = entails_auto(&schema, set.tgds(), &candidate, ChaseBudget::default());
    Ok(format!(
        "Σ ⊨ {} : {:?}\n",
        candidate.display(&schema),
        verdict
    ))
}

fn cmd_rewrite(target: &str, rules_path: &str) -> Result<String, String> {
    let mut schema = Schema::default();
    let tgds = load_rules(&mut schema, rules_path)?;
    let set = TgdSet::new(schema.clone(), tgds).map_err(|e| e.to_string())?;
    let opts = RewriteOptions {
        parallel: true,
        ..Default::default()
    };
    let outcome = match target {
        "linear" => {
            if !set.is_guarded() {
                return Err("rewrite linear expects a guarded rule set (Algorithm 1)".into());
            }
            guarded_to_linear(&set, &opts)
        }
        "guarded" => {
            if !set.is_frontier_guarded() {
                return Err(
                    "rewrite guarded expects a frontier-guarded rule set (Algorithm 2)".into(),
                );
            }
            frontier_guarded_to_guarded(&set, &opts)
        }
        other => return Err(format!("unknown rewrite target {other:?} (linear|guarded)")),
    };
    let mut out = String::new();
    match outcome {
        RewriteOutcome::Rewritten(rewriting) => {
            let _ = writeln!(out, "rewritable; equivalent {target} set:");
            for tgd in &rewriting {
                let _ = writeln!(out, "  {}", tgd.display(&schema));
            }
        }
        RewriteOutcome::NotRewritable => {
            let _ = writeln!(out, "NOT rewritable into {target} tgds (definitive)");
        }
        RewriteOutcome::Cancelled => {
            let _ = writeln!(
                out,
                "cancelled before a verdict (deadline or cancel signal)"
            );
        }
        RewriteOutcome::Suspended => {
            let _ = writeln!(out, "suspended on the memory budget before a verdict");
        }
        RewriteOutcome::Inconclusive => {
            // The Appendix F closure refutations often settle what the
            // budgeted candidate search could not.
            let witness = match target {
                "linear" => union_closure_witness(&set, 6, 0),
                _ => disjoint_union_closure_witness(&set, 6, 0),
            };
            match witness {
                Some(w) => {
                    let _ = writeln!(
                        out,
                        "NOT rewritable into {target} tgds: closure violation witness"
                    );
                    let _ = writeln!(out, "  model A: {}", w.left);
                    let _ = writeln!(out, "  model B: {}", w.right);
                    let _ = writeln!(
                        out,
                        "  their {}union violates the rules: {}",
                        if w.disjoint { "disjoint " } else { "" },
                        w.union
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "inconclusive within default budgets (try larger atom budgets via the library API)"
                    );
                }
            }
        }
    }
    Ok(out)
}

fn cmd_audit(rules_path: &str) -> Result<String, String> {
    let mut schema = Schema::default();
    let tgds = load_rules(&mut schema, rules_path)?;
    let set = TgdSet::new(schema, tgds).map_err(|e| e.to_string())?;
    let ontology = TgdOntology::new(set.clone());
    let report = property_report(&ontology, set.tgds(), 3, 42);
    let mut out = String::new();
    let _ = writeln!(out, "critical (k ≤ 3):        {:?}", report.critical);
    let _ = writeln!(out, "⊗-closed (sampled):      {:?}", report.product_closed);
    let _ = writeln!(
        out,
        "∩-closed (sampled):      {:?}",
        report.intersection_closed
    );
    let _ = writeln!(out, "∪-closed (sampled):      {:?}", report.union_closed);
    let _ = writeln!(
        out,
        "domain independent:      {:?}",
        report.domain_independent
    );
    let _ = writeln!(out, "members sampled:         {}", report.sampled_members);
    Ok(out)
}

fn cmd_separate(rules_path: &str, data_path: &str, n: &str, m: &str) -> Result<String, String> {
    let mut schema = Schema::default();
    let tgds = load_rules(&mut schema, rules_path)?;
    let data = load_data(&mut schema, data_path)?;
    let set = TgdSet::new(schema.clone(), tgds).map_err(|e| e.to_string())?;
    let n: usize = n.parse().map_err(|_| "n must be a number".to_string())?;
    let m: usize = m.parse().map_err(|_| "m must be a number".to_string())?;
    if satisfies_tgds(&data, set.tgds()) {
        return Ok("the instance is a member of the ontology: nothing to separate\n".into());
    }
    match separating_edd(&set, &data, n, m, &DiagramOptions::default()) {
        Some(edd) => Ok(format!(
            "separating edd (satisfied by every member, violated by the instance):\n  {}\n",
            edd.display(&schema)
        )),
        None => Ok(format!(
            "no separating edd found at ({n},{m}) within budget\n"
        )),
    }
}

fn cmd_model(rules_path: &str, data_path: &str) -> Result<String, String> {
    use tgdkit::chase_crate::{finite_model, SearchBudget};
    let mut schema = Schema::default();
    let tgds = load_rules(&mut schema, rules_path)?;
    let data = load_data(&mut schema, data_path)?;
    let set = TgdSet::new(schema, tgds).map_err(|e| e.to_string())?;
    match finite_model(set.tgds(), &data, &SearchBudget::default()) {
        Some(model) => Ok(format!(
            "finite model with {} facts over {} elements:\n{}\n",
            model.fact_count(),
            model.dom().len(),
            model
        )),
        None => Ok("no finite model found within the search budget\n".into()),
    }
}

const USAGE: &str = "\
tgdkit — model-theoretic toolkit for tgd ontologies (PODS'21 reproduction)

USAGE:
  tgdkit check    <rules-file>
  tgdkit chase    <rules-file> <data-file>
  tgdkit certain  <rules-file> <data-file> '<body -> Ans(vars)>'
  tgdkit entail   <rules-file> '<tgd>'
  tgdkit rewrite  <linear|guarded> <rules-file>
  tgdkit audit    <rules-file>
  tgdkit separate <rules-file> <data-file> <n> <m>
  tgdkit model    <rules-file> <data-file>
";

fn run(args: &[String]) -> Result<String, String> {
    match args {
        [cmd, rules] if cmd == "check" => cmd_check(rules),
        [cmd, rules, data] if cmd == "chase" => cmd_chase(rules, data),
        [cmd, rules, data, query] if cmd == "certain" => cmd_certain(rules, data, query),
        [cmd, rules, tgd] if cmd == "entail" => cmd_entail(rules, tgd),
        [cmd, target, rules] if cmd == "rewrite" => cmd_rewrite(target, rules),
        [cmd, rules] if cmd == "audit" => cmd_audit(rules),
        [cmd, rules, data, n, m] if cmd == "separate" => cmd_separate(rules, data, n, m),
        [cmd, rules, data] if cmd == "model" => cmd_model(rules, data),
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("tgdkit-test-{name}-{}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn check_reports_classes() {
        let rules = write_temp("check", "E(x,y) -> exists z : E(y,z).");
        let out = cmd_check(&rules).unwrap();
        assert!(out.contains("linear"));
        assert!(out.contains("weakly acyclic") && out.contains("false"));
        std::fs::remove_file(rules).ok();
    }

    #[test]
    fn chase_produces_a_model() {
        let rules = write_temp("chase-rules", "E(x,y), E(y,z) -> E(x,z).");
        let data = write_temp("chase-data", "E(a,b), E(b,c)");
        let out = cmd_chase(&rules, &data).unwrap();
        assert!(out.contains("3 facts"));
        assert!(out.contains("terminated"));
        std::fs::remove_file(rules).ok();
        std::fs::remove_file(data).ok();
    }

    #[test]
    fn certain_answers_render_names() {
        let rules = write_temp("certain-rules", "Emp(x) -> exists d : In(x,d).");
        let data = write_temp("certain-data", "Emp(ann)");
        let out = cmd_certain(&rules, &data, "In(x,d) -> Ans(x)").unwrap();
        assert!(out.contains("1 certain answers"));
        assert!(out.contains("(ann)"));
        std::fs::remove_file(rules).ok();
        std::fs::remove_file(data).ok();
    }

    #[test]
    fn entail_decides() {
        let rules = write_temp("entail-rules", "P(x) -> Q(x). Q(x) -> R(x).");
        let out = cmd_entail(&rules, "P(x) -> R(x)").unwrap();
        assert!(out.contains("Proved"));
        std::fs::remove_file(rules).ok();
    }

    #[test]
    fn rewrite_linear_works() {
        let rules = write_temp("rw-rules", "R(x,y), R(x,x) -> T(x). R(x,y) -> T(x).");
        let out = cmd_rewrite("linear", &rules).unwrap();
        assert!(out.contains("rewritable"));
        std::fs::remove_file(rules).ok();
    }

    #[test]
    fn rewrite_refutes_the_gadget_via_union_closure() {
        let rules = write_temp("rw-gadget", "R(x), P(x) -> T(x).");
        let out = cmd_rewrite("linear", &rules).unwrap();
        assert!(out.contains("NOT rewritable"), "got: {out}");
        assert!(out.contains("union violates"));
        std::fs::remove_file(rules).ok();
    }

    #[test]
    fn rewrite_validates_input_class() {
        let rules = write_temp("rw-bad", "R(x,y), S(y,z) -> T(x,z).");
        assert!(cmd_rewrite("linear", &rules).is_err());
        assert!(cmd_rewrite("bogus", &rules).is_err());
        std::fs::remove_file(rules).ok();
    }

    #[test]
    fn separate_produces_an_edd() {
        let rules = write_temp("sep-rules", "E(x,y) -> E(y,x).");
        let data = write_temp("sep-data", "E(a,b)");
        let out = cmd_separate(&rules, &data, "2", "0").unwrap();
        assert!(out.contains("separating edd"));
        std::fs::remove_file(rules).ok();
        std::fs::remove_file(data).ok();
    }

    #[test]
    fn model_finds_finite_models_for_divergent_sets() {
        let rules = write_temp("model-rules", "E(x,y) -> exists z : E(y,z).");
        let data = write_temp("model-data", "E(a,b)");
        let out = cmd_model(&rules, &data).unwrap();
        assert!(out.contains("finite model"), "got: {out}");
        std::fs::remove_file(rules).ok();
        std::fs::remove_file(data).ok();
    }

    #[test]
    fn usage_on_bad_args() {
        assert!(run(&["bogus".to_string()]).is_err());
        assert!(run(&[]).is_err());
    }
}
