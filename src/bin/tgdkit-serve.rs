//! The tgdkit entailment server.
//!
//! ```text
//! tgdkit-serve --listen <addr> [--workers N] [--quantum-ms N] [--data-dir DIR] [--drain-ms N] [--shards N] [--replicas N] [--quorum N]
//! tgdkit-serve --self-test [--levels N] [--smalls N]
//! tgdkit-serve --kb-drive <addr> [--batches N] [--tenant NAME]
//! tgdkit-serve --kb-verify <addr> [--batches N] [--tenant NAME]
//! ```
//!
//! `--listen` starts the multi-tenant scheduler (see `tgdkit-serve`'s
//! crate docs for the wire protocol) and blocks until a client sends a
//! `Shutdown` request; with `--data-dir`, tenants additionally get
//! durable knowledge bases under that directory, recovered
//! crash-consistently on restart. `--self-test` is the CI entry point: it
//! runs one pathological guarded→linear rewrite next to a stream of small
//! entailments from other tenants and fails the process unless
//!
//! - every small request completed with the expected verdict,
//! - small requests kept completing while the rewrite was in flight,
//! - the rewrite was actually time-sliced (suspended and resumed), and
//! - its time-sliced verdict matched a dedicated (unsliced) run.
//!
//! `--kb-drive`/`--kb-verify` are the client halves of the CI
//! kill-and-recover smoke: drive applies chain-edge batches one
//! acknowledged request at a time (the server is SIGKILLed somewhere in
//! the loop), verify checks a restarted server's recovered state against
//! the closed form the acknowledged prefix implies.

use std::process::ExitCode;
use std::time::Duration;

use tgdkit_serve::smoke::{run_kb_drive, run_kb_verify, run_smoke, SmokeConfig};
use tgdkit_serve::{Server, ServerConfig};

const USAGE: &str = "\
tgdkit-serve — multi-tenant entailment service (tgdkit engine)

USAGE:
  tgdkit-serve --listen <addr> [--workers N] [--quantum-ms N] [--data-dir DIR] [--drain-ms N] [--shards N]
                [--replicas N] [--quorum N]
  tgdkit-serve --self-test [--levels N] [--smalls N] [--quantum-ms N] [--workers N]
  tgdkit-serve --kb-drive <addr> [--batches N] [--tenant NAME]
  tgdkit-serve --kb-verify <addr> [--batches N] [--tenant NAME]
";

struct Flags {
    listen: Option<String>,
    self_test: bool,
    kb_drive: Option<String>,
    kb_verify: Option<String>,
    levels: Option<usize>,
    smalls: Option<usize>,
    quantum_ms: Option<u64>,
    workers: Option<usize>,
    data_dir: Option<String>,
    drain_ms: Option<u64>,
    batches: Option<usize>,
    tenant: Option<String>,
    shards: Option<usize>,
    replicas: Option<usize>,
    quorum: Option<usize>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        listen: None,
        self_test: false,
        kb_drive: None,
        kb_verify: None,
        levels: None,
        smalls: None,
        quantum_ms: None,
        workers: None,
        data_dir: None,
        drain_ms: None,
        batches: None,
        tenant: None,
        shards: None,
        replicas: None,
        quorum: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--self-test" => flags.self_test = true,
            "--listen" => flags.listen = Some(value("--listen")?),
            "--kb-drive" => flags.kb_drive = Some(value("--kb-drive")?),
            "--kb-verify" => flags.kb_verify = Some(value("--kb-verify")?),
            "--levels" => flags.levels = Some(parse_num(&value("--levels")?, "--levels")?),
            "--smalls" => flags.smalls = Some(parse_num(&value("--smalls")?, "--smalls")?),
            "--quantum-ms" => {
                flags.quantum_ms = Some(parse_num(&value("--quantum-ms")?, "--quantum-ms")? as u64)
            }
            "--workers" => flags.workers = Some(parse_num(&value("--workers")?, "--workers")?),
            "--data-dir" => flags.data_dir = Some(value("--data-dir")?),
            "--drain-ms" => {
                flags.drain_ms = Some(parse_num(&value("--drain-ms")?, "--drain-ms")? as u64)
            }
            "--batches" => flags.batches = Some(parse_num(&value("--batches")?, "--batches")?),
            "--tenant" => flags.tenant = Some(value("--tenant")?),
            "--shards" => flags.shards = Some(parse_num(&value("--shards")?, "--shards")?),
            "--replicas" => flags.replicas = Some(parse_num(&value("--replicas")?, "--replicas")?),
            "--quorum" => flags.quorum = Some(parse_num(&value("--quorum")?, "--quorum")?),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    let modes = usize::from(flags.self_test)
        + usize::from(flags.listen.is_some())
        + usize::from(flags.kb_drive.is_some())
        + usize::from(flags.kb_verify.is_some());
    if modes != 1 {
        return Err(USAGE.to_string());
    }
    Ok(flags)
}

fn parse_num(text: &str, flag: &str) -> Result<usize, String> {
    text.parse()
        .map_err(|_| format!("{flag} expects a number, got {text:?}"))
}

fn self_test(flags: &Flags) -> Result<String, String> {
    let defaults = SmokeConfig::default();
    let config = SmokeConfig {
        levels: flags.levels.unwrap_or(defaults.levels),
        smalls: flags.smalls.unwrap_or(defaults.smalls),
        quantum: flags
            .quantum_ms
            .map(Duration::from_millis)
            .unwrap_or(defaults.quantum),
        workers: flags.workers.unwrap_or(defaults.workers),
    };
    let report = run_smoke(&config)?;

    let mut out = String::new();
    out.push_str(&format!(
        "requests: {} (1 rewrite + {} smalls)\n",
        report.requests, config.smalls
    ));
    out.push_str(&format!(
        "rewrite: outcome tag {} in {} ms, {} quanta, {} suspensions, matches dedicated: {}\n",
        report.rewrite_outcome,
        report.rewrite_ms,
        report.rewrite_quanta,
        report.rewrite_suspensions,
        report.rewrite_matches_dedicated
    ));
    out.push_str(&format!(
        "smalls: {}/{} correct, {} finished while the rewrite was in flight, p50 {} us, p99 {} us\n",
        report.smalls_correct,
        config.smalls,
        report.smalls_finished_before_rewrite,
        report.small_p50_us(),
        report.small_p99_us()
    ));

    // The acceptance gates. Latency gets a generous absolute bound — CI
    // machines are slow and shared — but the structural properties
    // (sliced ≡ dedicated, smalls made progress during the rewrite,
    // the rewrite really was preempted) are exact.
    let mut failures = Vec::new();
    if report.smalls_correct != config.smalls {
        failures.push(format!(
            "only {}/{} small requests answered correctly",
            report.smalls_correct, config.smalls
        ));
    }
    if !report.rewrite_matches_dedicated {
        failures.push("time-sliced rewrite diverged from the dedicated run".into());
    }
    if report.rewrite_suspensions < 3 {
        failures.push(format!(
            "rewrite was suspended only {} times (expected >= 3: it should be time-sliced repeatedly)",
            report.rewrite_suspensions
        ));
    }
    if report.smalls_finished_before_rewrite == 0 {
        failures.push("no small request completed while the rewrite was in flight".into());
    }
    let latency_bound_us = 100 * config.quantum.as_micros().max(1) as u64;
    if report.small_p99_us() > latency_bound_us {
        failures.push(format!(
            "small p99 {} us exceeds {} us",
            report.small_p99_us(),
            latency_bound_us
        ));
    }
    if failures.is_empty() {
        out.push_str("self-test: PASS\n");
        Ok(out)
    } else {
        Err(format!("{out}self-test: FAIL\n  {}", failures.join("\n  ")))
    }
}

fn listen(flags: &Flags) -> Result<String, String> {
    let defaults = ServerConfig::default();
    let mut scheduler = defaults.scheduler;
    if let Some(workers) = flags.workers {
        scheduler.workers = workers;
    }
    if let Some(quantum_ms) = flags.quantum_ms {
        scheduler.quantum = Duration::from_millis(quantum_ms);
    }
    if let Some(data_dir) = &flags.data_dir {
        scheduler.data_dir = Some(data_dir.into());
    }
    if let Some(drain_ms) = flags.drain_ms {
        scheduler.drain = Duration::from_millis(drain_ms);
    }
    if let Some(shards) = flags.shards {
        // Per-tenant shard count for full KB re-chases; the KB config
        // mirrors it so the knob survives either merge direction.
        scheduler.tenant.shards = shards.max(1);
        scheduler.kb.shards = shards.max(1);
    }
    let replicas = flags.replicas.unwrap_or(1).max(1);
    if flags.replicas.is_some() {
        // N >= 2 gives every tenant a quorum-acknowledged replicated
        // store (N byte-identical replica directories under its data
        // directory); mirrored like --shards.
        scheduler.tenant.replicas = replicas;
        scheduler.kb.replicas = replicas;
    }
    if let Some(quorum) = flags.quorum {
        if quorum < 1 || quorum > replicas {
            return Err(format!(
                "--quorum must be between 1 and --replicas ({replicas}), got {quorum}"
            ));
        }
        scheduler.tenant.quorum = quorum;
        scheduler.kb.quorum = quorum;
    }
    let server = Server::start(ServerConfig {
        addr: flags.listen.clone().expect("listen mode"),
        scheduler,
    })
    .map_err(|e| format!("cannot listen: {e}"))?;
    println!("tgdkit-serve listening on {}", server.addr());
    // Blocks until a client sends a Shutdown request (or the process is
    // killed); the scheduler drains queued work with error responses.
    server.run_until_shutdown();
    Ok("tgdkit-serve: shut down cleanly\n".into())
}

fn run(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let tenant = flags.tenant.as_deref().unwrap_or("kb-smoke");
    let batches = flags.batches.unwrap_or(24) as u32;
    if flags.self_test {
        self_test(&flags)
    } else if let Some(addr) = &flags.kb_drive {
        run_kb_drive(addr, tenant, batches)
    } else if let Some(addr) = &flags.kb_verify {
        run_kb_verify(addr, tenant, batches)
    } else {
        listen(&flags)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn usage_on_bad_args() {
        assert!(parse_flags(&[]).is_err());
        assert!(parse_flags(&strings(&["--bogus"])).is_err());
        // --listen and --self-test are mutually exclusive modes.
        assert!(parse_flags(&strings(&["--listen", "127.0.0.1:0", "--self-test"])).is_err());
        assert!(parse_flags(&strings(&["--quantum-ms", "ten", "--self-test"])).is_err());
    }

    #[test]
    fn flags_parse() {
        let flags = parse_flags(&strings(&[
            "--self-test",
            "--levels",
            "2",
            "--smalls",
            "4",
            "--quantum-ms",
            "10",
            "--workers",
            "1",
        ]))
        .unwrap();
        assert!(flags.self_test);
        assert_eq!(flags.levels, Some(2));
        assert_eq!(flags.smalls, Some(4));
        assert_eq!(flags.quantum_ms, Some(10));
        assert_eq!(flags.workers, Some(1));
    }

    #[test]
    fn kb_flags_parse() {
        let flags = parse_flags(&strings(&[
            "--kb-drive",
            "127.0.0.1:7777",
            "--batches",
            "12",
            "--tenant",
            "acme",
        ]))
        .unwrap();
        assert_eq!(flags.kb_drive.as_deref(), Some("127.0.0.1:7777"));
        assert_eq!(flags.batches, Some(12));
        assert_eq!(flags.tenant.as_deref(), Some("acme"));
        // Exactly one mode at a time.
        assert!(parse_flags(&strings(&[
            "--kb-drive",
            "127.0.0.1:7777",
            "--kb-verify",
            "127.0.0.1:7777",
        ]))
        .is_err());
        let flags = parse_flags(&strings(&[
            "--listen",
            "127.0.0.1:0",
            "--data-dir",
            "/tmp/kb",
            "--drain-ms",
            "500",
            "--shards",
            "4",
        ]))
        .unwrap();
        assert_eq!(flags.data_dir.as_deref(), Some("/tmp/kb"));
        assert_eq!(flags.drain_ms, Some(500));
        assert_eq!(flags.shards, Some(4));
    }

    #[test]
    fn replication_flags_parse_and_validate() {
        let flags = parse_flags(&strings(&[
            "--listen",
            "127.0.0.1:0",
            "--data-dir",
            "/tmp/kb",
            "--replicas",
            "3",
            "--quorum",
            "2",
        ]))
        .unwrap();
        assert_eq!(flags.replicas, Some(3));
        assert_eq!(flags.quorum, Some(2));
        // A quorum larger than the replica count can never be met; listen
        // rejects it before binding.
        let flags = parse_flags(&strings(&[
            "--listen",
            "127.0.0.1:0",
            "--replicas",
            "2",
            "--quorum",
            "3",
        ]))
        .unwrap();
        let err = listen(&flags).unwrap_err();
        assert!(err.contains("--quorum"), "{err}");
    }

    #[test]
    fn self_test_passes_on_the_default_shape() {
        let flags = parse_flags(&strings(&["--self-test"])).unwrap();
        let out = self_test(&flags).unwrap_or_else(|e| panic!("self-test failed:\n{e}"));
        assert!(out.contains("self-test: PASS"), "{out}");
    }
}
